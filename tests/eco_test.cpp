// Incremental/ECO delta-routing tests (DESIGN.md §2.4), in two halves:
//
//  * Differential-equivalence fuzz: seeded instances from the benchmark
//    families, each routed from scratch and then hit with one random edit.
//    The delta result must be verifier-clean against the edited problem,
//    every preserved net byte-identical to the base layout, and the quality
//    (failed-net count, wire length) within a stated bound of routing the
//    edited problem from scratch. GRIDROUTE_ECO_INSTANCES shrinks the run
//    for sanitizer legs (scripts/tier1.sh sets it).
//
//  * Invalidation-rule properties: a net whose footprint (pins + base wire,
//    inflated by one cell) is disjoint from the dirty box is never ripped —
//    asserted both on the plan and on the trace ledger (no kNetStart) — and
//    a net touching it always is, including via-stack dirty boxes on
//    N >= 3 layer stacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "core/delta.hpp"
#include "obs/sinks.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// Fuzz volume: default 200 seeded instances; the GRIDROUTE_ECO_INSTANCES
/// environment knob shrinks (or grows) the run.
int instance_count() {
  if (const char* env = std::getenv("GRIDROUTE_ECO_INSTANCES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

RouteResult route_fresh(const Problem& p) {
  RouteRequest request;
  request.problem = &p;
  return route(request);
}

/// Planar cells carrying any pin of any net — cells an edit must not claim
/// for a new pin or cover with a new obstacle if the edited problem is to
/// stay valid.
std::unordered_set<Point> pin_cells(const Problem& p) {
  std::unordered_set<Point> cells;
  for (NetId id = 0; id < p.net_count(); ++id)
    for (const Pin& pin : p.net(id).pins) cells.insert(pin.pos);
  return cells;
}

/// A cell that is in-region, routable on every layer, and free of pins —
/// a always-legal landing spot for a moved/added pin or a 1x1 obstacle.
/// Returns false when the sampling budget runs out (dense instance).
bool pick_free_cell(std::mt19937_64& rng, const Problem& p,
                    const std::unordered_set<Point>& pins, Point* out) {
  const Rect& b = p.region().bounds();
  std::uniform_int_distribution<int> dx(b.lo.x, b.hi.x);
  std::uniform_int_distribution<int> dy(b.lo.y, b.hi.y);
  for (int tries = 0; tries < 200; ++tries) {
    const Point c{dx(rng), dy(rng)};
    if (!p.region().in_region(c) || pins.count(c)) continue;
    bool clear = true;
    for (int k = 0; k < p.region().layer_count(); ++k)
      if (!p.region().routable({c, layer_at(k)})) {
        clear = false;
        break;
      }
    if (clear) {
      *out = c;
      return true;
    }
  }
  return false;
}

/// One random edit against `p`. Always produces a valid, non-empty edit:
/// ops that need a free cell fall back to a net removal when the instance
/// is too dense to find one.
ProblemEdit random_edit(std::mt19937_64& rng, const Problem& p) {
  const auto pins = pin_cells(p);
  ProblemEdit edit;
  auto multi_pin_net = [&]() -> NetId {
    std::vector<NetId> ids;
    for (NetId id = 0; id < p.net_count(); ++id)
      if (p.net(id).pins.size() >= 2 && !p.net(id).fixed) ids.push_back(id);
    if (ids.empty()) return kNoNet;
    return ids[rng() % ids.size()];
  };
  const NetId victim = multi_pin_net();
  auto fallback_remove = [&]() {
    edit.remove_nets.push_back(victim >= 0 ? victim : 0);
  };

  switch (rng() % 7) {
    case 0: {  // move one pin of an existing net
      Point to;
      if (victim < 0 || !pick_free_cell(rng, p, pins, &to)) {
        fallback_remove();
        break;
      }
      const int pin = static_cast<int>(rng() % p.net(victim).pins.size());
      edit.move_pins.push_back({victim, pin, to});
      break;
    }
    case 1: {  // add a pin to an existing net
      Point at;
      if (victim < 0 || !pick_free_cell(rng, p, pins, &at)) {
        fallback_remove();
        break;
      }
      edit.add_pins.push_back({victim, Pin{at, Layer::kMetal1, true}});
      break;
    }
    case 2: {  // remove a pin
      if (victim < 0) {
        fallback_remove();
        break;
      }
      const int pin = static_cast<int>(rng() % p.net(victim).pins.size());
      edit.remove_pins.push_back({victim, pin});
      break;
    }
    case 3:  // drop a whole net
      fallback_remove();
      break;
    case 4: {  // add a fresh two-pin net
      Point a, b;
      if (!pick_free_cell(rng, p, pins, &a) ||
          !pick_free_cell(rng, p, pins, &b) || a == b) {
        fallback_remove();
        break;
      }
      Net net;
      net.name = "eco_added";
      net.pins = {{a, Layer::kMetal1, true}, {b, Layer::kMetal1, true}};
      edit.add_nets.push_back(std::move(net));
      break;
    }
    case 5: {  // new obstacle (sometimes single-layer)
      Point c;
      if (!pick_free_cell(rng, p, pins, &c)) {
        fallback_remove();
        break;
      }
      ProblemEdit::AddObstacle ob;
      ob.rect = {c, c};
      ob.all_layers = (rng() % 2) == 0;
      if (!ob.all_layers)
        ob.layer = layer_at(static_cast<int>(
            rng() % static_cast<std::uint64_t>(p.region().layer_count())));
      edit.add_obstacles.push_back(ob);
      break;
    }
    default: {  // region re-sizing: carve one cell out
      Point c;
      if (!pick_free_cell(rng, p, pins, &c)) {
        fallback_remove();
        break;
      }
      edit.subtract_region.push_back({c, c});
      break;
    }
  }
  return edit;
}

/// One seeded instance per index, cycling the benchmark families (two-layer
/// switchboxes, macro-cell regions with obstacles, and an N=3 stack).
Problem fuzz_instance(int i) {
  const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(i);
  switch (i % 4) {
    case 0:
      return suite::random_switchbox(seed, 12, 9, 7).to_problem();
    case 1:
      return suite::macrocell_region(seed, 20, 14, 9);
    case 2:
      return suite::burstein_class_switchbox(seed, 14, 10, 10).to_problem();
    default:
      return suite::multilayer_region(seed, 12, 9, 7, LayerStack(3));
  }
}

TEST(EcoFuzz, DeltaEquivalentToBaseAndNearScratchQuality) {
  const int n = instance_count();
  for (int i = 0; i < n; ++i) {
    SCOPED_TRACE("instance " + std::to_string(i));
    const Problem base = fuzz_instance(i);
    const RouteResult base_result = route_fresh(base);
    ASSERT_TRUE(base_result.status.ok());

    std::mt19937_64 rng(0xEC0DE17Au + static_cast<std::uint64_t>(i));
    DeltaRequest request;
    request.base_problem = &base;
    request.base_layout = &base_result.grid;
    request.edit = random_edit(rng, base);
    ASSERT_FALSE(request.edit.empty());

    const DeltaResult delta = route_delta(request);
    ASSERT_TRUE(delta.result.status.ok() ||
                delta.result.status.code() == ErrorCode::kResource)
        << delta.result.status.message();

    // The equivalence contract: verifier-clean against the edited problem,
    // preserved nets byte-identical to the base layout. Holds even for
    // pre-screen rejections (the warm start is still replayed).
    const auto eq = verify_delta_equivalence(
        delta.edited, delta.result.grid, base_result.grid, delta.preserved);
    EXPECT_TRUE(eq.equivalent())
        << eq.delta.violations.size() << " violations, "
        << eq.changed_preserved.size() << " changed preserved nets";

    // Partition sanity: preserved and re-routed sets are disjoint, and
    // every failure is a net the plan actually attempted.
    std::unordered_set<NetId> preserved(delta.preserved.begin(),
                                        delta.preserved.end());
    std::unordered_set<NetId> rerouted(delta.rerouted.begin(),
                                       delta.rerouted.end());
    for (NetId id : delta.preserved) EXPECT_FALSE(rerouted.count(id));
    for (NetId id : delta.result.failed) EXPECT_TRUE(rerouted.count(id));

    // Quality vs from-scratch on the same edited problem: the warm start
    // may cost a little (frozen nets constrain the re-route), but stays
    // within a fixed failed-net slack and a 2x + constant length bound.
    const RouteResult scratch = route_fresh(delta.edited);
    if (delta.prescreen_rejected) {
      // Pre-screen soundness: a provably-infeasible edit must also defeat
      // the from-scratch run.
      EXPECT_FALSE(scratch.failed.empty());
    } else {
      EXPECT_LE(delta.result.failed.size(), scratch.failed.size() + 3);
      EXPECT_LE(delta.result.grid.total_nodes(),
                2 * scratch.grid.total_nodes() + 40);
    }
  }
}

// ---------------------------------------------------------------------------
// Invalidation-rule properties
// ---------------------------------------------------------------------------

/// Two well-separated vertical nets on the default two-layer stack. Net a
/// lives at x <= 4, net b at x >= 11 — far enough apart that any edit local
/// to one leaves the other's inflated footprint clear.
Problem two_island_problem() {
  Problem p{Region(16, 6)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{1, 1}, Layer::kMetal1, true},
                   {{4, 1}, Layer::kMetal1, true}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{12, 1}, Layer::kMetal1, true},
                   {{12, 4}, Layer::kMetal1, true}};
  return p;
}

TEST(EcoProperty, DisjointNetPreservedTouchingNetRipped) {
  const Problem base = two_island_problem();
  const RouteResult base_result = route_fresh(base);
  ASSERT_TRUE(base_result.status.ok());
  ASSERT_TRUE(base_result.failed.empty());

  // Obstacle inside net b's bounding box: dirty box = that one cell.
  ProblemEdit edit;
  edit.add_obstacles.push_back({{{12, 2}, {12, 2}}, Layer::kMetal1, true});

  obs::ReplaySink ledger;
  DeltaRequest request;
  request.base_problem = &base;
  request.base_layout = &base_result.grid;
  request.edit = edit;
  request.trace = &ledger;
  const DeltaResult delta = route_delta(request);

  // Plan: a (footprint x in [0,5] after inflation) is disjoint from the
  // dirty cell (12,2) -> preserved; b's footprint contains it -> ripped.
  EXPECT_EQ(delta.preserved, std::vector<NetId>{0});
  EXPECT_EQ(delta.rerouted, std::vector<NetId>{1});
  EXPECT_TRUE(delta.dirty_box.contains(Point{12, 2}));
  EXPECT_FALSE(delta.dirty_box.intersects({{0, 0}, {5, 5}}));

  // Trace ledger: the preserved net never re-enters the router (no
  // kNetStart), the invalidated one does; the delta events carry the
  // partition.
  bool saw_submitted = false, saw_preserved = false, saw_invalidated = false;
  for (const obs::TraceEvent& e : ledger.events()) {
    switch (e.kind) {
      case obs::EventKind::kNetStart:
        EXPECT_NE(e.net, 0) << "preserved net was ripped";
        break;
      case obs::EventKind::kDeltaSubmitted:
        saw_submitted = true;
        EXPECT_TRUE(e.ok);
        EXPECT_EQ(e.value, edit.op_count());
        break;
      case obs::EventKind::kNetsPreserved:
        saw_preserved = true;
        EXPECT_EQ(e.nets, std::vector<int>{0});
        break;
      case obs::EventKind::kNetsInvalidated:
        saw_invalidated = true;
        EXPECT_EQ(e.nets, std::vector<int>{1});
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_submitted);
  EXPECT_TRUE(saw_preserved);
  EXPECT_TRUE(saw_invalidated);

  // Byte-identity of the preserved net, spot-checked by fingerprint too.
  EXPECT_EQ(net_wire_fingerprint(base_result.grid, 0),
            net_wire_fingerprint(delta.result.grid, 0));
  EXPECT_TRUE(verify_delta_equivalence(delta.edited, delta.result.grid,
                                       base_result.grid, delta.preserved)
                  .equivalent());
  EXPECT_TRUE(delta.result.failed.empty());
}

TEST(EcoProperty, FootprintInflationBoundaryIsExact) {
  // A vertical net at x = 5. Footprint after inflation reaches x = 6: a
  // dirty cell at x = 7 leaves it preserved, at x = 6 invalidates it.
  Problem p{Region(12, 5)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{5, 1}, Layer::kMetal1, true},
                   {{5, 3}, Layer::kMetal1, true}};
  const RouteResult base = route_fresh(p);
  ASSERT_TRUE(base.failed.empty());

  for (const auto& [x, preserved] : {std::pair{7, true}, std::pair{6, false}}) {
    ProblemEdit edit;
    edit.add_obstacles.push_back({{{x, 2}, {x, 2}}, Layer::kMetal1, true});
    const auto edited = apply_edit(p, edit);
    ASSERT_TRUE(edited.ok());
    const DeltaPlan plan = plan_delta(p, base.grid, *edited, edit);
    EXPECT_EQ(plan.preserved == std::vector<NetId>{a}, preserved)
        << "dirty cell at x=" << x;
    EXPECT_EQ(plan.invalidated == std::vector<NetId>{a}, !preserved);
  }
}

TEST(EcoProperty, ViaStackDirtyBoxOnFourLayerStack) {
  // N = 4 stack. Net a's base wire climbs a via stack at (2,2) through
  // layers 0..2; net b is a planar column at x = 12. A single-layer
  // obstacle on layer 2 at the stack cell invalidates a (its wire occupies
  // that exact node) and preserves b.
  Region region(16, 6, LayerStack(4));
  Problem p{std::move(region)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{2, 1}, layer_at(0), false}, {{2, 4}, layer_at(2), false}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{12, 1}, layer_at(0), false},
                   {{12, 4}, layer_at(0), false}};
  ASSERT_TRUE(p.validate_status().empty());

  // Hand-build the base layout (plan_delta only needs a grid, not a routed
  // result): a = (2,1..2) on L0, via stack to L2 at (2,2), (2,2..4) on L2;
  // b = (12,1..4) on L0.
  RoutingGrid grid(p.region(), p.net_count());
  for (int y = 1; y <= 2; ++y) ASSERT_TRUE(grid.occupy({{2, y}, layer_at(0)}, a));
  ASSERT_TRUE(grid.occupy({{2, 2}, layer_at(1)}, a));
  ASSERT_TRUE(grid.add_via({2, 2}, 0, a));
  for (int y = 2; y <= 4; ++y) ASSERT_TRUE(grid.occupy({{2, y}, layer_at(2)}, a));
  ASSERT_TRUE(grid.add_via({2, 2}, 1, a));
  for (int y = 1; y <= 4; ++y)
    ASSERT_TRUE(grid.occupy({{12, y}, layer_at(0)}, b));
  ASSERT_TRUE(verify(p, grid).all_ok());

  ProblemEdit edit;
  edit.add_obstacles.push_back({{{2, 2}, {2, 2}}, layer_at(2), false});
  const auto edited = apply_edit(p, edit);
  ASSERT_TRUE(edited.ok());
  const DeltaPlan plan = plan_delta(p, grid, *edited, edit);

  EXPECT_EQ(plan.invalidated, std::vector<NetId>{a});
  EXPECT_EQ(plan.preserved, std::vector<NetId>{b});
  // The warm problem freezes b's column (wire + no vias) as fixed pre-wire.
  EXPECT_TRUE(plan.warm.net(b).fixed);
  EXPECT_FALSE(plan.warm.net(b).prewire.empty());
  EXPECT_TRUE(plan.warm.net(b).previas.empty());
  EXPECT_FALSE(plan.warm.net(a).fixed);
  EXPECT_TRUE(plan.warm.net(a).prewire.empty());
}

TEST(EcoProperty, ExportNetWireRoundTripsViaStack) {
  // export_net_wire must reproduce a via stack exactly: one degenerate
  // landing run per layer plus both cuts, in deterministic order.
  Region region(6, 6, LayerStack(3));
  RoutingGrid grid(region, 1);
  ASSERT_TRUE(grid.occupy({{3, 3}, layer_at(0)}, 0));
  ASSERT_TRUE(grid.occupy({{3, 3}, layer_at(1)}, 0));
  ASSERT_TRUE(grid.add_via({3, 3}, 0, 0));
  ASSERT_TRUE(grid.occupy({{3, 3}, layer_at(2)}, 0));
  ASSERT_TRUE(grid.add_via({3, 3}, 1, 0));

  std::vector<Segment> segments;
  std::vector<PreVia> vias;
  export_net_wire(grid, 0, &segments, &vias);
  ASSERT_EQ(segments.size(), 3u);  // one single-cell run per layer
  for (const Segment& s : segments) {
    EXPECT_EQ(s.a.pos, (Point{3, 3}));
    EXPECT_EQ(s.b.pos, (Point{3, 3}));
  }
  ASSERT_EQ(vias.size(), 2u);
  EXPECT_EQ(vias[0].cut, 0);
  EXPECT_EQ(vias[1].cut, 1);
}

TEST(EcoProperty, PrescreenRejectsProvablyInfeasibleEdit) {
  // Start from a routable two-net problem, then add a wall of obstacles
  // that pinches the region to fewer crossing pairs than spanning nets.
  Problem p{Region(10, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, true},
                   {{9, 1}, Layer::kMetal1, true}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{0, 2}, Layer::kMetal1, true},
                   {{9, 2}, Layer::kMetal1, true}};
  const RouteResult base = route_fresh(p);
  ASSERT_TRUE(base.failed.empty());

  // Carve out the whole x=5 column: no path can cross it afterwards.
  ProblemEdit edit;
  edit.subtract_region.push_back({{5, 0}, {5, 3}});

  DeltaRequest request;
  request.base_problem = &p;
  request.base_layout = &base.grid;
  request.edit = edit;
  const DeltaResult delta = route_delta(request);

  EXPECT_TRUE(delta.prescreen_rejected);
  EXPECT_EQ(delta.result.status.code(), ErrorCode::kResource);
  // Both nets straddle the cut, so both are invalidated and reported
  // failed without a routing attempt.
  EXPECT_EQ(delta.result.failed.size(), 2u);
  ASSERT_EQ(delta.result.degradation.size(), 1u);
  EXPECT_EQ(delta.result.degradation[0].kind, Degradation::Kind::kPrescreen);

  const RoutabilityEstimate estimate = assess_routability(delta.edited);
  EXPECT_TRUE(estimate.provably_infeasible());
  EXPECT_GT(estimate.cut_overflow, 0);
}

TEST(EcoProperty, MalformedEditDegradesToValidation) {
  const Problem base = two_island_problem();
  const RouteResult base_result = route_fresh(base);

  ProblemEdit edit;
  edit.move_pins.push_back({99, 0, {1, 1}});  // unknown net id

  DeltaRequest request;
  request.base_problem = &base;
  request.base_layout = &base_result.grid;
  request.edit = edit;
  const DeltaResult delta = route_delta(request);
  EXPECT_EQ(delta.result.status.code(), ErrorCode::kValidation);
  ASSERT_FALSE(delta.result.degradation.empty());
  EXPECT_EQ(delta.result.degradation[0].kind, Degradation::Kind::kValidation);
}

}  // namespace
}  // namespace gridroute
