/* C ABI smoke test — compiled as plain C (C11), linked against the C++
 * libraries. Exercises the whole gr_* surface end to end: parse, hash,
 * service lifecycle, submit/wait, cache resubmit, solution readback,
 * error reporting. Exits nonzero (with a message on stderr) on the first
 * failed expectation; the test harness only checks the exit code. */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "service/gridroute_c.h"

static int g_failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      fprintf(stderr, "FAIL %s:%d: %s (last error: %s)\n", __FILE__,    \
              __LINE__, #cond, gr_last_error());                        \
      ++g_failures;                                                     \
    }                                                                   \
  } while (0)

static const char kProblemText[] =
    "region 9 9\n"
    "net h\n"
    "pin 0 4 m1\n"
    "pin 8 4 m1\n"
    "net v\n"
    "pin 4 0 m2\n"
    "pin 4 8 m2\n";

/* Same nets, declared in the opposite order. */
static const char kReorderedText[] =
    "region 9 9\n"
    "net v\n"
    "pin 4 0 m2\n"
    "pin 4 8 m2\n"
    "net h\n"
    "pin 0 4 m1\n"
    "pin 8 4 m1\n";

int main(void) {
  gr_problem* problem = NULL;
  gr_problem* twin = NULL;
  gr_problem* bad = NULL;
  gr_service* service = NULL;
  gr_service_options service_options;
  gr_job_options job_options;
  gr_result* first = NULL;
  gr_result* second = NULL;
  gr_result* missing = NULL;
  uint64_t job_a = 0;
  uint64_t job_b = 0;
  char* solution = NULL;

  /* Status names are part of the stable surface. */
  CHECK(strcmp(gr_status_name(GR_STATUS_OK), "ok") == 0);
  CHECK(gr_last_error() != NULL);
  CHECK(gr_last_error()[0] == '\0');

  /* Malformed text: typed parse error, NULL handle, message available. */
  CHECK(gr_problem_parse("region nope\n", &bad) == GR_STATUS_PARSE);
  CHECK(bad == NULL);
  CHECK(strlen(gr_last_error()) > 0);

  CHECK(gr_problem_parse(kProblemText, &problem) == GR_STATUS_OK);
  CHECK(problem != NULL);
  CHECK(gr_problem_net_count(problem) == 2);

  /* canonical_hash: net-order invariant across the boundary too. */
  CHECK(gr_problem_parse(kReorderedText, &twin) == GR_STATUS_OK);
  CHECK(gr_problem_canonical_hash(problem) != 0);
  CHECK(gr_problem_canonical_hash(problem) ==
        gr_problem_canonical_hash(twin));

  gr_service_options_init(&service_options);
  service_options.workers = 1;
  CHECK(gr_service_create(&service_options, &service) == GR_STATUS_OK);
  CHECK(service != NULL);

  gr_job_options_init(&job_options);
  CHECK(gr_service_submit(service, problem, &job_options, &job_a) ==
        GR_STATUS_OK);

  CHECK(gr_service_wait(service, job_a, &first) == GR_STATUS_OK);
  CHECK(first != NULL);
  CHECK(gr_result_state(first) == GR_JOB_COMPLETED);
  CHECK(gr_result_from_cache(first) == 0);
  CHECK(gr_result_queue_wait_ms(first) >= 0.0);
  CHECK(gr_result_has_solution(first));
  CHECK(gr_result_failed_net_count(first) == 0);

  solution = gr_result_solution_string(first);
  CHECK(solution != NULL);
  CHECK(strlen(solution) > 0);

  /* Waiting again on a consumed id is a validation error. */
  CHECK(gr_service_wait(service, job_a, &missing) == GR_STATUS_VALIDATION);
  CHECK(missing == NULL);

  /* Resubmitting the identical problem hits the cache, bit-identically. */
  CHECK(gr_service_submit(service, problem, &job_options, &job_b) ==
        GR_STATUS_OK);
  CHECK(job_b != job_a);
  CHECK(gr_service_wait(service, job_b, &second) == GR_STATUS_OK);
  CHECK(gr_result_state(second) == GR_JOB_COMPLETED);
  CHECK(gr_result_from_cache(second) != 0);
  {
    char* cached = gr_result_solution_string(second);
    CHECK(cached != NULL);
    CHECK(solution != NULL && cached != NULL &&
          strcmp(cached, solution) == 0);
    gr_string_free(cached);
  }

  /* Cancelling a terminal (consumed) job is a no-op. */
  CHECK(gr_service_cancel(service, job_b) == 0);

  /* Health snapshot: quiet single-worker pool, no supervision activity. */
  {
    gr_health health;
    memset(&health, 0x5a, sizeof(health)); /* prove every field is written */
    CHECK(gr_service_health(service, &health) == GR_STATUS_OK);
    CHECK(health.workers_alive == 1);
    CHECK(health.brownout_active == 0);
    CHECK(health.workers_respawned == 0);
    CHECK(health.workers_abandoned == 0);
    CHECK(health.queue_depth == 0);
    CHECK(health.running_jobs == 0);
    CHECK(health.jobs_retried == 0);
    CHECK(health.jobs_quarantined == 0);
    CHECK(health.brownouts_entered == 0);
    CHECK(health.watchdog_cancels == 0);
    CHECK(health.cache_insert_failures == 0);
  }

  /* ---- Misuse hardening --------------------------------------------------
   * NULL, never-created, and already-freed handles must come back as typed
   * errors (or safe accessor defaults) with gr_last_error() set — never a
   * crash. A double free is a detected no-op. */
  {
    gr_problem* fake_problem = (gr_problem*)&job_options; /* never created */
    gr_service* fake_service = (gr_service*)&job_options;
    gr_result* fake_result = (gr_result*)&job_options;
    gr_health health;
    gr_result* out_result = (gr_result*)&job_options;
    uint64_t out_id = 0;
    gr_problem* null_out = NULL;

    /* NULL handles. */
    CHECK(gr_problem_parse(NULL, &null_out) == GR_STATUS_VALIDATION);
    CHECK(null_out == NULL);
    CHECK(gr_problem_parse(kProblemText, NULL) == GR_STATUS_VALIDATION);
    CHECK(gr_problem_net_count(NULL) == 0);
    CHECK(gr_problem_canonical_hash(NULL) == 0);
    CHECK(gr_service_create(&service_options, NULL) == GR_STATUS_VALIDATION);
    CHECK(gr_service_submit(NULL, problem, &job_options, &out_id) ==
          GR_STATUS_VALIDATION);
    CHECK(strlen(gr_last_error()) > 0);
    CHECK(gr_service_wait(NULL, 1, &out_result) == GR_STATUS_VALIDATION);
    CHECK(out_result == NULL);
    CHECK(gr_service_cancel(NULL, 1) == 0);
    CHECK(gr_service_health(NULL, &health) == GR_STATUS_VALIDATION);
    CHECK(gr_result_state(NULL) == GR_JOB_CANCELLED);
    CHECK(gr_result_has_solution(NULL) == 0);
    CHECK(gr_result_failed_net_count(NULL) == -1);
    CHECK(gr_result_solution_string(NULL) == NULL);

    /* Never-created handles: the registry refuses them. */
    CHECK(gr_problem_net_count(fake_problem) == 0);
    CHECK(strlen(gr_last_error()) > 0);
    out_result = (gr_result*)&job_options;
    CHECK(gr_service_wait(fake_service, 1, &out_result) ==
          GR_STATUS_VALIDATION);
    CHECK(out_result == NULL);
    CHECK(gr_service_health(fake_service, &health) == GR_STATUS_VALIDATION);
    CHECK(gr_result_solution_string(fake_result) == NULL);
    CHECK(gr_service_submit(fake_service, problem, &job_options, &out_id) ==
          GR_STATUS_VALIDATION);
  }

  gr_string_free(solution);
  gr_result_free(first);
  gr_result_free(second);

  /* Already-freed handles: uses are refused, a second free is a detected
   * no-op (gr_last_error() names it), and the program keeps running. */
  gr_result_free(first); /* double free: detected, not fatal */
  CHECK(strlen(gr_last_error()) > 0);
  CHECK(gr_result_state(first) == GR_JOB_CANCELLED); /* safe default */
  CHECK(gr_result_has_solution(first) == 0);
  CHECK(gr_result_solution_string(first) == NULL);

  gr_service_free(service);
  gr_service_free(service); /* double free: detected, not fatal */
  CHECK(strlen(gr_last_error()) > 0);
  {
    uint64_t out_id = 0;
    gr_health health;
    CHECK(gr_service_submit(service, problem, &job_options, &out_id) ==
          GR_STATUS_VALIDATION);
    CHECK(gr_service_health(service, &health) == GR_STATUS_VALIDATION);
  }

  gr_problem_free(problem);
  CHECK(gr_problem_net_count(problem) == 0); /* freed: safe default + error */
  CHECK(strlen(gr_last_error()) > 0);
  gr_problem_free(problem); /* double free: detected, not fatal */
  gr_problem_free(twin);
  gr_problem_free(bad); /* freeing NULL is legal */
  gr_result_free(NULL);
  gr_service_free(NULL);
  gr_string_free(NULL);

  if (g_failures > 0) {
    fprintf(stderr, "%d failure(s)\n", g_failures);
    return 1;
  }
  printf("c_abi_smoke: all checks passed\n");
  return 0;
}
