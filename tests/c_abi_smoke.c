/* C ABI smoke test — compiled as plain C (C11), linked against the C++
 * libraries. Exercises the whole gr_* surface end to end: parse, hash,
 * service lifecycle, submit/wait, cache resubmit, solution readback,
 * error reporting. Exits nonzero (with a message on stderr) on the first
 * failed expectation; the test harness only checks the exit code. */

#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "service/gridroute_c.h"

static int g_failures = 0;

#define CHECK(cond)                                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      fprintf(stderr, "FAIL %s:%d: %s (last error: %s)\n", __FILE__,    \
              __LINE__, #cond, gr_last_error());                        \
      ++g_failures;                                                     \
    }                                                                   \
  } while (0)

static const char kProblemText[] =
    "region 9 9\n"
    "net h\n"
    "pin 0 4 m1\n"
    "pin 8 4 m1\n"
    "net v\n"
    "pin 4 0 m2\n"
    "pin 4 8 m2\n";

/* Same nets, declared in the opposite order. */
static const char kReorderedText[] =
    "region 9 9\n"
    "net v\n"
    "pin 4 0 m2\n"
    "pin 4 8 m2\n"
    "net h\n"
    "pin 0 4 m1\n"
    "pin 8 4 m1\n";

int main(void) {
  gr_problem* problem = NULL;
  gr_problem* twin = NULL;
  gr_problem* bad = NULL;
  gr_service* service = NULL;
  gr_service_options service_options;
  gr_job_options job_options;
  gr_result* first = NULL;
  gr_result* second = NULL;
  gr_result* missing = NULL;
  uint64_t job_a = 0;
  uint64_t job_b = 0;
  char* solution = NULL;

  /* Status names are part of the stable surface. */
  CHECK(strcmp(gr_status_name(GR_STATUS_OK), "ok") == 0);
  CHECK(gr_last_error() != NULL);
  CHECK(gr_last_error()[0] == '\0');

  /* Malformed text: typed parse error, NULL handle, message available. */
  CHECK(gr_problem_parse("region nope\n", &bad) == GR_STATUS_PARSE);
  CHECK(bad == NULL);
  CHECK(strlen(gr_last_error()) > 0);

  CHECK(gr_problem_parse(kProblemText, &problem) == GR_STATUS_OK);
  CHECK(problem != NULL);
  CHECK(gr_problem_net_count(problem) == 2);

  /* canonical_hash: net-order invariant across the boundary too. */
  CHECK(gr_problem_parse(kReorderedText, &twin) == GR_STATUS_OK);
  CHECK(gr_problem_canonical_hash(problem) != 0);
  CHECK(gr_problem_canonical_hash(problem) ==
        gr_problem_canonical_hash(twin));

  gr_service_options_init(&service_options);
  service_options.workers = 1;
  CHECK(gr_service_create(&service_options, &service) == GR_STATUS_OK);
  CHECK(service != NULL);

  gr_job_options_init(&job_options);
  CHECK(gr_service_submit(service, problem, &job_options, &job_a) ==
        GR_STATUS_OK);

  CHECK(gr_service_wait(service, job_a, &first) == GR_STATUS_OK);
  CHECK(first != NULL);
  CHECK(gr_result_state(first) == GR_JOB_COMPLETED);
  CHECK(gr_result_from_cache(first) == 0);
  CHECK(gr_result_queue_wait_ms(first) >= 0.0);
  CHECK(gr_result_has_solution(first));
  CHECK(gr_result_failed_net_count(first) == 0);

  solution = gr_result_solution_string(first);
  CHECK(solution != NULL);
  CHECK(strlen(solution) > 0);

  /* Waiting again on a consumed id is a validation error. */
  CHECK(gr_service_wait(service, job_a, &missing) == GR_STATUS_VALIDATION);
  CHECK(missing == NULL);

  /* Resubmitting the identical problem hits the cache, bit-identically. */
  CHECK(gr_service_submit(service, problem, &job_options, &job_b) ==
        GR_STATUS_OK);
  CHECK(job_b != job_a);
  CHECK(gr_service_wait(service, job_b, &second) == GR_STATUS_OK);
  CHECK(gr_result_state(second) == GR_JOB_COMPLETED);
  CHECK(gr_result_from_cache(second) != 0);
  {
    char* cached = gr_result_solution_string(second);
    CHECK(cached != NULL);
    CHECK(solution != NULL && cached != NULL &&
          strcmp(cached, solution) == 0);
    gr_string_free(cached);
  }

  /* Cancelling a terminal (consumed) job is a no-op. */
  CHECK(gr_service_cancel(service, job_b) == 0);

  gr_string_free(solution);
  gr_result_free(first);
  gr_result_free(second);
  gr_service_free(service);
  gr_problem_free(problem);
  gr_problem_free(twin);
  gr_problem_free(bad); /* freeing NULL is legal */

  if (g_failures > 0) {
    fprintf(stderr, "%d failure(s)\n", g_failures);
    return 1;
  }
  printf("c_abi_smoke: all checks passed\n");
  return 0;
}
