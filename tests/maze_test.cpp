#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <vector>

#include "maze/maze_router.hpp"

namespace gridroute {
namespace {

/// Fixture building a problem + grid + pin map in one go.
struct Maze : ::testing::Test {
  void build(int w, int h, int nets = 2) {
    problem = Problem{Region(w, h)};
    for (int i = 0; i < nets; ++i)
      problem.add_net("n" + std::to_string(i));
    grid.emplace(problem.region(), problem.net_count());
    pins = PinBlocks(problem);
  }

  SearchRequest req(GridPoint s, GridPoint t, NetId net = 0) {
    SearchRequest r;
    r.sources = {s};
    r.targets = {t};
    r.net = net;
    return r;
  }

  Problem problem;
  std::optional<RoutingGrid> grid;
  PinBlocks pins;
};

struct LeeTest : Maze {};
struct WeightedTest : Maze {};

TEST_F(LeeTest, StraightLineIsShortest) {
  build(8, 8);
  LeeRouter lee(*grid, pins);
  const auto res =
      lee.route(req({{0, 3}, Layer::kMetal1}, {{6, 3}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.length(), 7);
  EXPECT_TRUE(res.path.well_formed());
  EXPECT_EQ(res.cost, 6);
}

TEST_F(LeeTest, SourceEqualsTarget) {
  build(4, 4);
  LeeRouter lee(*grid, pins);
  const auto res =
      lee.route(req({{1, 1}, Layer::kMetal1}, {{1, 1}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.length(), 1);
  EXPECT_EQ(res.cost, 0);
}

TEST_F(LeeTest, DetoursAroundObstacle) {
  build(7, 7);
  // Wall on both layers across x=3, except a gap at y=6.
  problem.region().add_obstacle({{3, 0}, {3, 5}});
  grid.emplace(problem.region(), problem.net_count());
  LeeRouter lee(*grid, pins);
  const auto res =
      lee.route(req({{0, 0}, Layer::kMetal1}, {{6, 0}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  // Forced up to y=6 and back: 6 + 6 + 6 = 18 steps, 19 nodes.
  EXPECT_EQ(res.path.length(), 19);
  for (const GridPoint& g : res.path.nodes)
    EXPECT_TRUE(problem.region().routable(g));
}

TEST_F(LeeTest, UsesViaWhenLayerBlocked) {
  build(5, 5);
  problem.region().add_obstacle({{2, 0}, {2, 4}}, Layer::kMetal1);
  grid.emplace(problem.region(), problem.net_count());
  LeeRouter lee(*grid, pins);
  const auto res =
      lee.route(req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  EXPECT_GE(res.path.via_count(), 2);  // hop to M2 and back
}

TEST_F(LeeTest, ReportsUnreachable) {
  build(5, 5);
  problem.region().add_obstacle({{2, 0}, {2, 4}});  // both layers
  grid.emplace(problem.region(), problem.net_count());
  LeeRouter lee(*grid, pins);
  const auto res =
      lee.route(req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1}));
  EXPECT_FALSE(res.found);
}

TEST_F(LeeTest, ForeignWireBlocks) {
  build(5, 5);
  LeeRouter lee(*grid, pins);
  for (int y = 0; y < 5; ++y) {
    grid->occupy({{2, y}, Layer::kMetal1}, 1);
    grid->occupy({{2, y}, Layer::kMetal2}, 1);
  }
  const auto res =
      lee.route(req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1}, 0));
  EXPECT_FALSE(res.found);
}

TEST_F(LeeTest, OwnWireIsTraversable) {
  build(5, 5);
  LeeRouter lee(*grid, pins);
  for (int y = 0; y < 5; ++y) {
    grid->occupy({{2, y}, Layer::kMetal1}, 0);
    grid->occupy({{2, y}, Layer::kMetal2}, 0);
  }
  const auto res =
      lee.route(req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1}, 0));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.length(), 5);
}

TEST_F(LeeTest, MultiSourceMultiTarget) {
  build(9, 9);
  LeeRouter lee(*grid, pins);
  SearchRequest r;
  r.net = 0;
  r.sources = {{{0, 0}, Layer::kMetal1}, {{0, 8}, Layer::kMetal1}};
  r.targets = {{{8, 8}, Layer::kMetal1}, {{2, 8}, Layer::kMetal1}};
  const auto res = lee.route(r);
  ASSERT_TRUE(res.found);
  // Nearest pair is (0,8) -> (2,8): 3 nodes.
  EXPECT_EQ(res.path.length(), 3);
}

TEST_F(WeightedTest, PrefersLayerDirection) {
  build(10, 10);
  WeightedMazeRouter router(*grid, pins);
  // A purely horizontal run on M1 must stay on M1 (no via is cheaper).
  const auto res =
      router.route(req({{0, 5}, Layer::kMetal1}, {{9, 5}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.via_count(), 0);
  EXPECT_EQ(res.path.length(), 10);
}

TEST_F(WeightedTest, ChargesViaCost) {
  build(6, 6);
  CostModel m;
  WeightedMazeRouter router(*grid, pins, m);
  const auto res =
      router.route(req({{0, 0}, Layer::kMetal1}, {{0, 0}, Layer::kMetal2}));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cost, m.via);
  EXPECT_EQ(res.path.via_count(), 1);
}

TEST_F(WeightedTest, BendCostStraightensPaths) {
  build(12, 12);
  CostModel m;
  m.via = 200;       // stay planar
  m.bend = 10;       // make bends expensive
  m.wrong_way = 0;   // isolate the bend effect
  WeightedMazeRouter router(*grid, pins, m);
  const auto res =
      router.route(req({{0, 0}, Layer::kMetal1}, {{6, 6}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  int bends = 0;
  for (std::size_t i = 2; i < res.path.nodes.size(); ++i) {
    const Point d1 = res.path.nodes[i - 1].pos - res.path.nodes[i - 2].pos;
    const Point d2 = res.path.nodes[i].pos - res.path.nodes[i - 1].pos;
    if (!(d1 == d2)) ++bends;
  }
  EXPECT_EQ(bends, 1);  // L-shape: the minimum possible for a diagonal pair
}

TEST_F(WeightedTest, WrongWayCostSwitchesLayers) {
  build(8, 8);
  CostModel m;
  m.via = 3;
  m.wrong_way = 5;  // vertical on M1 very expensive vs 2 vias
  WeightedMazeRouter router(*grid, pins, m);
  const auto res =
      router.route(req({{4, 0}, Layer::kMetal1}, {{4, 7}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  // Cheapest plan: via to M2, run vertically, via back.
  EXPECT_EQ(res.path.via_count(), 2);
}

TEST_F(WeightedTest, NoPushMeansForeignBlocks) {
  build(5, 5);
  WeightedMazeRouter router(*grid, pins);
  for (int y = 0; y < 5; ++y) {
    grid->occupy({{2, y}, Layer::kMetal1}, 1);
    grid->occupy({{2, y}, Layer::kMetal2}, 1);
  }
  auto r = req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1});
  EXPECT_FALSE(router.route(r).found);
}

TEST_F(WeightedTest, PushModeCrossesForeignAtPenalty) {
  build(5, 5);
  CostModel m;
  WeightedMazeRouter router(*grid, pins, m);
  for (int y = 0; y < 5; ++y) {
    grid->occupy({{2, y}, Layer::kMetal1}, 1);
    grid->occupy({{2, y}, Layer::kMetal2}, 1);
  }
  auto r = req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1});
  r.allow_push = true;
  const auto res = router.route(r);
  ASSERT_TRUE(res.found);
  ASSERT_EQ(res.crossed.size(), 1u);
  EXPECT_EQ(res.crossed[0].pos.x, 2);
  EXPECT_GE(res.cost, m.push);  // the penalty is visible in the cost
}

TEST_F(WeightedTest, PushPicksCheapestVictimSet) {
  build(7, 7, 3);
  WeightedMazeRouter router(*grid, pins);
  // Net 1: full wall. Net 2: wall with... both walls complete, but wall 2
  // is two cells thick at one row only — crossing net 1 once is cheaper
  // than crossing net 2 twice.
  for (int y = 0; y < 7; ++y) {
    grid->occupy({{2, y}, Layer::kMetal1}, 1);
    grid->occupy({{2, y}, Layer::kMetal2}, 1);
    grid->occupy({{4, y}, Layer::kMetal1}, 2);
    grid->occupy({{4, y}, Layer::kMetal2}, 2);
    grid->occupy({{5, y}, Layer::kMetal1}, 2);
    grid->occupy({{5, y}, Layer::kMetal2}, 2);
  }
  auto r = req({{0, 3}, Layer::kMetal1}, {{3, 3}, Layer::kMetal1});
  r.allow_push = true;
  const auto res = router.route(r);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.crossed.size(), 1u);  // only net 1 crossed, once
}

TEST_F(WeightedTest, PinBlocksProtectForeignTerminals) {
  build(5, 5, 2);
  // Net 1 has a pin right on the only corridor.
  problem.net(1).pins.push_back({{2, 2}, Layer::kMetal1, true});
  problem.region().add_obstacle({{2, 0}, {2, 1}});
  problem.region().add_obstacle({{2, 3}, {2, 4}});
  grid.emplace(problem.region(), problem.net_count());
  pins = PinBlocks(problem);
  WeightedMazeRouter router(*grid, pins);
  auto r = req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1}, 0);
  EXPECT_FALSE(router.route(r).found);
  r.allow_push = true;  // pushing must not bury pins either
  EXPECT_FALSE(router.route(r).found);
  // The pin's owner itself may route through it.
  auto own = req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1}, 1);
  EXPECT_TRUE(router.route(own).found);
}

TEST_F(WeightedTest, FrozenNetsBlockPushing) {
  build(5, 5, 3);
  WeightedMazeRouter router(*grid, pins);
  for (int y = 0; y < 5; ++y) {
    grid->occupy({{2, y}, Layer::kMetal1}, 1);
    grid->occupy({{2, y}, Layer::kMetal2}, 1);
  }
  auto r = req({{0, 2}, Layer::kMetal1}, {{4, 2}, Layer::kMetal1});
  r.allow_push = true;
  ASSERT_TRUE(router.route(r).found);
  r.frozen = {1};  // the only wall net becomes untouchable
  EXPECT_FALSE(router.route(r).found);
  r.frozen = {2};  // freezing an uninvolved net changes nothing
  EXPECT_TRUE(router.route(r).found);
}

TEST_F(WeightedTest, PushHistorySteersAwayFromChargedCells) {
  build(7, 5, 2);
  WeightedMazeRouter router(*grid, pins);
  // A full-height double-layer wall: crossing is unavoidable, but the
  // history surcharge decides *where*.
  for (int y = 0; y < 5; ++y) {
    grid->occupy({{3, y}, Layer::kMetal1}, 1);
    grid->occupy({{3, y}, Layer::kMetal2}, 1);
  }
  auto r = req({{0, 2}, Layer::kMetal1}, {{6, 2}, Layer::kMetal1});
  r.allow_push = true;
  const auto straight = router.route(r);
  ASSERT_TRUE(straight.found);
  ASSERT_EQ(straight.crossed.size(), 1u);
  EXPECT_EQ(straight.crossed[0].pos, (Point{3, 2}));

  // Charge the straight crossing cell heavily: the probe must detour to a
  // different crossing row.
  std::vector<int> history(7 * 5, 0);
  history[2 * 7 + 3] = 1000;  // cell (3,2)
  r.push_history = &history;
  const auto biased = router.route(r);
  ASSERT_TRUE(biased.found);
  ASSERT_EQ(biased.crossed.size(), 1u);
  EXPECT_NE(biased.crossed[0].pos, (Point{3, 2}));
}

TEST_F(WeightedTest, HeuristicDoesNotChangeCosts) {
  build(14, 14);
  problem.region().add_obstacle({{6, 2}, {7, 11}});
  grid.emplace(problem.region(), problem.net_count());
  WeightedMazeRouter astar(*grid, pins);
  WeightedMazeRouter dijkstra(*grid, pins);
  dijkstra.set_future_cost(FutureCost::kNone);
  EXPECT_NE(astar.future_cost(), FutureCost::kNone);
  EXPECT_EQ(dijkstra.future_cost(), FutureCost::kNone);
  for (int trial = 0; trial < 8; ++trial) {
    const GridPoint s{{trial, 0}, Layer::kMetal1};
    const GridPoint t{{13 - trial, 13}, Layer::kMetal1};
    const auto a = astar.route(req(s, t));
    const auto d = dijkstra.route(req(s, t));
    ASSERT_EQ(a.found, d.found);
    if (a.found) {
      EXPECT_EQ(a.cost, d.cost);
    }
  }
}

TEST_F(WeightedTest, HeuristicExpandsFewerNodes) {
  build(32, 32);
  WeightedMazeRouter astar(*grid, pins);
  WeightedMazeRouter dijkstra(*grid, pins);
  dijkstra.set_future_cost(FutureCost::kNone);
  // A short hop in a big grid: A* should visit far less of it.
  const auto r = req({{4, 16}, Layer::kMetal1}, {{10, 16}, Layer::kMetal1});
  ASSERT_TRUE(astar.route(r).found);
  const long long a = astar.last_expansions();
  ASSERT_TRUE(dijkstra.route(r).found);
  const long long d = dijkstra.last_expansions();
  EXPECT_LT(a, d / 2);
}

TEST_F(WeightedTest, ResidualBoundIsSharperThanBboxAtEqualCosts) {
  // The residual future cost (the kResidual default) must price every
  // query identically to the bbox bound — both are admissible — while
  // never popping more states, and strictly fewer in aggregate
  // (DESIGN.md §2.1g).
  build(32, 32);
  WeightedMazeRouter residual(*grid, pins);
  WeightedMazeRouter bbox(*grid, pins);
  bbox.set_future_cost(FutureCost::kBboxManhattan);
  EXPECT_EQ(residual.future_cost(), FutureCost::kResidual);
  long long residual_total = 0, bbox_total = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const GridPoint s{{trial % 8, (trial * 5) % 32},
                      trial % 2 == 0 ? Layer::kMetal1 : Layer::kMetal2};
    const GridPoint t{{31 - trial % 6, (trial * 11) % 32}, Layer::kMetal1};
    const auto a = residual.route(req(s, t));
    const auto b = bbox.route(req(s, t));
    ASSERT_EQ(a.found, b.found) << "trial " << trial;
    if (a.found) EXPECT_EQ(a.cost, b.cost) << "trial " << trial;
    residual_total += residual.last_expansions();
    bbox_total += bbox.last_expansions();
  }
  // Aggregate, not per query: at f == C* tie-breaking may locally differ,
  // but the sharper bound must win overall.
  EXPECT_LT(residual_total, bbox_total);
}

TEST_F(WeightedTest, ExpansionCounterMoves) {
  build(16, 16);
  WeightedMazeRouter router(*grid, pins);
  router.route(req({{0, 0}, Layer::kMetal1}, {{15, 15}, Layer::kMetal1}));
  EXPECT_GT(router.last_expansions(), 16);
}

TEST_F(WeightedTest, RepeatedQueriesAreIndependent) {
  build(8, 8);
  WeightedMazeRouter router(*grid, pins);
  const auto a =
      router.route(req({{0, 0}, Layer::kMetal1}, {{7, 0}, Layer::kMetal1}));
  const auto b =
      router.route(req({{0, 7}, Layer::kMetal1}, {{7, 7}, Layer::kMetal1}));
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.path.length(), b.path.length());
  EXPECT_EQ(a.cost, b.cost);
}

TEST_F(WeightedTest, UnitModelMatchesLee) {
  build(11, 11);
  problem.region().add_obstacle({{5, 0}, {5, 8}});
  grid.emplace(problem.region(), problem.net_count());
  LeeRouter lee(*grid, pins);
  WeightedMazeRouter unit(*grid, pins, CostModel::unit());
  const auto a =
      lee.route(req({{1, 1}, Layer::kMetal1}, {{9, 1}, Layer::kMetal1}));
  const auto b =
      unit.route(req({{1, 1}, Layer::kMetal1}, {{9, 1}, Layer::kMetal1}));
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  EXPECT_EQ(a.path.length(), b.path.length());  // both shortest in steps
}

// --- regressions: 64-bit path costs (best_ used to be int32 and silently
// --- truncated, making every popped entry look stale past 2^31) -----------

TEST_F(WeightedTest, CostsBeyondInt32SurviveLongPaths) {
  build(40, 3);
  CostModel m;
  m.step = 100'000'000;  // 39 straight steps -> 3.9e9, past INT32_MAX
  m.via = m.step;
  m.bend = 0;
  m.wrong_way = 0;
  WeightedMazeRouter router(*grid, pins, m);
  const auto res =
      router.route(req({{0, 1}, Layer::kMetal1}, {{39, 1}, Layer::kMetal1}));
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.path.length(), 40);
  EXPECT_EQ(res.cost, 39LL * 100'000'000);
}

TEST_F(WeightedTest, PushHistoryCostsBeyondInt32) {
  // Net 1 walls off columns 1..31 on both layers and all rows; the only way
  // through for net 0 is pushing across all 31 columns. A PathFinder-style
  // history surcharge of 1e8 per cell drives the path cost past 2^31.
  build(33, 3);
  for (int x = 1; x <= 31; ++x)
    for (int y = 0; y < 3; ++y)
      for (Layer l : {Layer::kMetal1, Layer::kMetal2})
        ASSERT_TRUE(grid->occupy({{x, y}, l}, 1));
  WeightedMazeRouter router(*grid, pins);
  const CostModel& m = router.cost_model();
  std::vector<int> history(33 * 3, 100'000'000);
  auto r = req({{0, 1}, Layer::kMetal1}, {{32, 1}, Layer::kMetal1});
  r.allow_push = true;
  r.push_history = &history;
  const auto res = router.route(r);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(static_cast<int>(res.crossed.size()), 31);
  EXPECT_EQ(res.cost, 32LL * m.step + 31LL * (m.push + 100'000'000));
}

// --- regressions: epoch wrap (stamps from 2^32 searches ago read fresh).
// --- The wrap reset lives in SearchArena::begin_search(); both router
// --- adapters drive it through their arena() accessor. ---------------------

TEST_F(WeightedTest, EpochWrapOnFreshRouter) {
  build(8, 8);
  const auto request =
      req({{0, 3}, Layer::kMetal1}, {{6, 3}, Layer::kMetal1});
  WeightedMazeRouter control(*grid, pins);
  const auto expected = control.route(request);
  ASSERT_TRUE(expected.found);

  WeightedMazeRouter wrapping(*grid, pins);
  wrapping.arena().set_epoch(std::numeric_limits<std::uint32_t>::max());
  // The next search wraps the epoch to 0 — the value untouched stamps hold,
  // so without the reset every state reads "already visited at cost 0".
  const auto res = wrapping.route(request);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cost, expected.cost);
}

TEST_F(WeightedTest, SearchesStayFreshAcrossEpochWrap) {
  build(8, 8);
  const auto request =
      req({{0, 3}, Layer::kMetal1}, {{6, 3}, Layer::kMetal1});
  WeightedMazeRouter router(*grid, pins);
  const auto before = router.route(request);
  ASSERT_TRUE(before.found);
  router.arena().set_epoch(std::numeric_limits<std::uint32_t>::max() - 1);
  for (int i = 0; i < 4; ++i) {  // crosses the wrap mid-sequence
    const auto res = router.route(request);
    ASSERT_TRUE(res.found) << "search " << i;
    EXPECT_EQ(res.cost, before.cost) << "search " << i;
  }
}

TEST_F(LeeTest, EpochWrapOnFreshRouter) {
  build(8, 8);
  const auto request =
      req({{0, 3}, Layer::kMetal1}, {{6, 3}, Layer::kMetal1});
  LeeRouter wrapping(*grid, pins);
  wrapping.arena().set_epoch(std::numeric_limits<std::uint32_t>::max());
  const auto res = wrapping.route(request);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cost, 6);
}

TEST_F(LeeTest, SearchesStayFreshAcrossEpochWrap) {
  build(8, 8);
  const auto request =
      req({{0, 3}, Layer::kMetal1}, {{6, 3}, Layer::kMetal1});
  LeeRouter lee(*grid, pins);
  const auto before = lee.route(request);
  ASSERT_TRUE(before.found);
  lee.arena().set_epoch(std::numeric_limits<std::uint32_t>::max() - 1);
  for (int i = 0; i < 4; ++i) {  // crosses the wrap mid-sequence
    const auto res = lee.route(request);
    ASSERT_TRUE(res.found) << "search " << i;
    EXPECT_EQ(res.cost, before.cost) << "search " << i;
  }
}

// --- the shared kernel: expansion counters and arena sharing ---------------

TEST_F(LeeTest, ExpansionCounterMoves) {
  build(16, 16);
  LeeRouter lee(*grid, pins);
  ASSERT_TRUE(
      lee.route(req({{0, 0}, Layer::kMetal1}, {{15, 15}, Layer::kMetal1}))
          .found);
  EXPECT_GT(lee.last_expansions(), 16);
  // A trivial query resets the counter rather than accumulating.
  ASSERT_TRUE(
      lee.route(req({{0, 0}, Layer::kMetal1}, {{0, 0}, Layer::kMetal1}))
          .found);
  EXPECT_EQ(lee.last_expansions(), 1);
}

TEST_F(Maze, RoutersShareOneArena) {
  build(10, 10);
  const auto request =
      req({{0, 3}, Layer::kMetal1}, {{6, 3}, Layer::kMetal1});
  LeeRouter lee_own(*grid, pins);
  WeightedMazeRouter weighted_own(*grid, pins);
  const auto lee_expected = lee_own.route(request);
  const auto weighted_expected = weighted_own.route(request);
  ASSERT_TRUE(lee_expected.found);
  ASSERT_TRUE(weighted_expected.found);

  // One arena lent to both routers, interleaved: the weighted router's
  // 5-states-per-node space forces a resize between the two, and epochs keep
  // every search fresh regardless. Results must match the isolated runs.
  SearchArena shared;
  LeeRouter lee(*grid, pins, &shared);
  WeightedMazeRouter weighted(*grid, pins, {}, &shared);
  for (int round = 0; round < 3; ++round) {
    const auto a = lee.route(request);
    const auto b = weighted.route(request);
    ASSERT_TRUE(a.found);
    ASSERT_TRUE(b.found);
    EXPECT_EQ(a.cost, lee_expected.cost) << "round " << round;
    EXPECT_EQ(a.path.nodes, lee_expected.path.nodes) << "round " << round;
    EXPECT_EQ(b.cost, weighted_expected.cost) << "round " << round;
    EXPECT_EQ(b.path.nodes, weighted_expected.path.nodes)
        << "round " << round;
  }
}

}  // namespace
}  // namespace gridroute
