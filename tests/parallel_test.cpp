// Concurrency tests for the multi-start engine: the parallel reduction must
// be bit-identical to the serial ascending scan for every thread count, and
// independently constructed routers must be safely runnable from concurrent
// threads over one shared const Problem. scripts/tier1.sh re-runs this
// binary under ThreadSanitizer (GRIDROUTE_SANITIZE=thread).

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "search/search_arena.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

RouteResult route_attempts(const Problem& p, int extra_attempts,
                           RouterOptions options = {},
                           SearchArena* arena = nullptr) {
  RouteRequest request;
  request.problem = &p;
  request.options = options;
  request.extra_attempts = extra_attempts;
  request.arena = arena;
  return route(request);
}

/// Bit-identical layout comparison: every node owner and every via owner.
::testing::AssertionResult grids_identical(const Problem& p,
                                           const RoutingGrid& a,
                                           const RoutingGrid& b) {
  const Rect& bounds = p.region().bounds();
  for (int y = bounds.lo.y; y <= bounds.hi.y; ++y)
    for (int x = bounds.lo.x; x <= bounds.hi.x; ++x) {
      const Point pos{x, y};
      if (a.via_owner(pos) != b.via_owner(pos))
        return ::testing::AssertionFailure()
               << "via owner differs at (" << x << "," << y << ")";
      for (Layer l : {Layer::kMetal1, Layer::kMetal2})
        if (a.owner({pos, l}) != b.owner({pos, l}))
          return ::testing::AssertionFailure()
                 << "node owner differs at (" << x << "," << y << ")";
    }
  return ::testing::AssertionSuccess();
}

TEST(ParallelMultiStart, BitIdenticalToSerialOnSaturatedBox) {
  const Problem p = suite::overfilled_switchbox().to_problem();
  RouterOptions serial_opts;
  serial_opts.threads = 1;
  const RouteResult serial = route_attempts(p, 7, serial_opts);
  // Saturated on purpose: no attempt completes, so nothing is cancelled and
  // every one of the 8 attempts contributes to the reduction. Every worker
  // reuses one SearchArena across all attempts it claims (8 attempts over
  // 2 threads = ~4 reuses per arena), so this also pins down that arena
  // recycling cannot leak state between attempts.
  ASSERT_FALSE(serial.complete());

  for (int threads : {2, 4, 8}) {
    RouterOptions opts;
    opts.threads = threads;
    const RouteResult parallel = route_attempts(p, 7, opts);
    EXPECT_TRUE(grids_identical(p, serial.grid, parallel.grid))
        << threads << " threads";
    EXPECT_EQ(serial.failed, parallel.failed)
        << threads << " threads";
    EXPECT_EQ(serial.winning_attempt, parallel.winning_attempt)
        << threads << " threads";
    EXPECT_EQ(serial.winning_seed, parallel.winning_seed)
        << threads << " threads";
    EXPECT_EQ(serial.total_expansions, parallel.total_expansions)
        << threads << " threads";
    EXPECT_TRUE(verify(p, parallel.grid).drc_clean()) << threads << " threads";
  }
}

TEST(ParallelMultiStart, EarlyCancellationSkipsAttemptsPastFirstComplete) {
  // Trivially routable: attempt 0 completes, so the watermark must cancel
  // every later attempt — exactly what the serial loop did by breaking.
  const Problem p = suite::cross_switchbox().to_problem();
  for (int threads : {1, 4}) {
    RouterOptions opts;
    opts.threads = threads;
    const RouteResult d = route_attempts(p, 50, opts);
    EXPECT_TRUE(d.complete());
    EXPECT_EQ(d.winning_attempt, 0);
    ASSERT_EQ(d.attempts.size(), 51u);
    EXPECT_TRUE(d.attempts[0].ran);
    EXPECT_TRUE(d.attempts[0].complete);
    int ran = 0;
    for (const AttemptReport& a : d.attempts) ran += a.ran ? 1 : 0;
    if (threads == 1) {
      // One worker claims attempts in order: attempt 0 completes, the
      // watermark drops, and nothing else may even start.
      EXPECT_EQ(ran, 1);
    } else {
      // With a pool, only attempts claimed before the completion landed may
      // have run; how many is timing-dependent, but the tail must be cut.
      EXPECT_LT(ran, 51);
    }
  }
}

TEST(ParallelMultiStart, PerAttemptObservability) {
  const Problem p = suite::overfilled_switchbox().to_problem();
  RouterOptions opts;
  opts.threads = 2;
  const RouteResult d = route_attempts(p, 3, opts);
  ASSERT_EQ(d.attempts.size(), 4u);
  long long expansions = 0;
  for (const AttemptReport& a : d.attempts) {
    EXPECT_EQ(a.index, &a - d.attempts.data());
    EXPECT_TRUE(a.ran);  // incomplete instance: nothing cancelled
    EXPECT_GT(a.expansions, 0) << a.index;
    EXPECT_GE(a.wall_ms, 0.0) << a.index;
    expansions += a.expansions;
  }
  EXPECT_EQ(d.total_expansions, expansions);
  EXPECT_EQ(d.winning_seed, d.attempts[static_cast<std::size_t>(
                                            d.winning_attempt)].seed);
}

TEST(ParallelMultiStart, WorkerArenaReuseDoesNotLeakState) {
  // Multi-start hands each pool worker one SearchArena that every attempt
  // it claims borrows (incremental_router.cpp's worker loop). Model that
  // reuse adversarially: one long-lived arena carried across different
  // problems — forcing arena resizes between grids — and primed so the
  // sequence crosses the 2^32 epoch wrap mid-run. Every route must be
  // bit-identical to a fresh-arena route of the same problem.
  const std::vector<Problem> problems = {
      suite::overfilled_switchbox().to_problem(),
      suite::burstein_class_switchbox(31).to_problem(),
      suite::cross_switchbox().to_problem(),
      suite::overfilled_switchbox().to_problem(),
  };
  SearchArena reused;
  reused.set_epoch(std::numeric_limits<std::uint32_t>::max() - 2);
  for (const Problem& p : problems) {
    const RouteResult fresh = route_attempts(p, 0);
    const RouteResult recycled = route_attempts(p, 0, {}, &reused);
    EXPECT_TRUE(grids_identical(p, fresh.grid, recycled.grid));
    EXPECT_EQ(fresh.failed, recycled.failed);
    EXPECT_EQ(fresh.stats.expansions, recycled.stats.expansions);
  }
}

TEST(ParallelMultiStart, ConcurrentRoutersWithPerThreadArenas) {
  // The per-worker arena pattern under real concurrency: 8 threads, each
  // owning one arena reused across several back-to-back routes of a shared
  // const Problem. Results must agree across threads and with a fresh-arena
  // baseline; TSan (tier1) watches for sharing violations.
  const Problem p = suite::burstein_class_switchbox(31).to_problem();
  const RouteResult baseline = route_attempts(p, 0);
  constexpr int kThreads = 8;
  constexpr int kRoutesPerThread = 3;
  std::vector<int> mismatches(kThreads, -1);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&p, &baseline, &mismatches, t] {
      SearchArena arena;
      int bad = 0;
      for (int round = 0; round < kRoutesPerThread; ++round) {
        const RouteResult d = route_attempts(p, 0, {}, &arena);
        if (d.failed != baseline.failed ||
            d.stats.expansions != baseline.stats.expansions ||
            !grids_identical(p, baseline.grid, d.grid))
          ++bad;
      }
      mismatches[static_cast<std::size_t>(t)] = bad;
    });
  for (std::thread& t : pool) t.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
}

TEST(ParallelMultiStart, ConcurrentRoutersOnSharedProblem) {
  // Stress the per-thread isolation claim directly: 8 routers, one shared
  // const Problem, no synchronization between them. Any hidden shared state
  // shows up as a TSan race or as diverging deterministic results.
  const Problem p = suite::burstein_class_switchbox(31).to_problem();
  constexpr int kThreads = 8;
  std::vector<std::optional<RouteOutcome>> outcomes(kThreads);
  std::vector<int> nodes(kThreads, -1);
  std::vector<int> vias(kThreads, -1);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&p, &outcomes, &nodes, &vias, t] {
      IncrementalRouter router(p, RouterOptions{});
      outcomes[static_cast<std::size_t>(t)] = router.run();
      nodes[static_cast<std::size_t>(t)] = router.grid().total_nodes();
      vias[static_cast<std::size_t>(t)] = router.grid().total_vias();
    });
  for (std::thread& t : pool) t.join();
  for (int t = 0; t < kThreads; ++t)
    ASSERT_TRUE(outcomes[static_cast<std::size_t>(t)].has_value()) << t;
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(outcomes[static_cast<std::size_t>(t)]->failed,
              outcomes[0]->failed)
        << t;
    EXPECT_EQ(nodes[static_cast<std::size_t>(t)], nodes[0]) << t;
    EXPECT_EQ(vias[static_cast<std::size_t>(t)], vias[0]) << t;
  }
}

}  // namespace
}  // namespace gridroute
