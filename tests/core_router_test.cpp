#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "core/stub_pruner.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

Pin pin(int x, int y) { return {{x, y}, Layer::kMetal1, true}; }

Problem straight_pair(int w = 8, int h = 6) {
  Problem p{Region(w, h)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 2), pin(w - 1, 2)};
  return p;
}

TEST(IncrementalRouter, RoutesTrivialNet) {
  const Problem p = straight_pair();
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
  EXPECT_EQ(out.stats.connections_attempted, 1);
  EXPECT_EQ(out.stats.connections_routed, 1);
  EXPECT_EQ(out.stats.weak_modifications, 0);
  EXPECT_EQ(out.stats.strong_ripups, 0);
}

TEST(IncrementalRouter, RoutesEmptyProblem) {
  Problem p{Region(4, 4)};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_EQ(out.stats.nets_attempted, 0);
}

TEST(IncrementalRouter, SkipsSingleAndZeroPinNets) {
  Problem p{Region(6, 6)};
  p.add_net("empty");
  const NetId s = p.add_net("single");
  p.net(s).pins = {pin(2, 2)};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_EQ(out.stats.nets_attempted, 0);
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(IncrementalRouter, MultiTerminalNetBecomesOneTree) {
  Problem p{Region(12, 12)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 0), pin(11, 0), pin(0, 11), pin(11, 11), pin(6, 6)};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  const VerifyReport r = verify(p, router.grid());
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(out.stats.connections_attempted, 4);
}

TEST(IncrementalRouter, TwoCrossingNetsUseLayers) {
  // A vertical and a horizontal net crossing in the middle: two layers make
  // this routable with zero modification.
  Problem p{Region(9, 9)};
  const NetId h = p.add_net("h");
  p.net(h).pins = {pin(0, 4), pin(8, 4)};
  const NetId v = p.add_net("v");
  p.net(v).pins = {pin(4, 0), pin(4, 8)};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
  EXPECT_EQ(out.stats.weak_modifications + out.stats.strong_ripups, 0);
}

TEST(IncrementalRouter, RoutesAroundObstacles) {
  Problem p{Region(10, 10)};
  p.region().add_obstacle({{4, 0}, {5, 7}});  // both layers
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 3), pin(9, 3)};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_TRUE(out.complete());
  const VerifyReport r = verify(p, router.grid());
  EXPECT_TRUE(r.all_ok());
  // The wire must detour above the wall (y >= 8 at the crossing).
  for (const GridPoint& g : router.grid().net_nodes(a)) {
    if (g.pos.x == 4 || g.pos.x == 5) {
      EXPECT_GE(g.pos.y, 8);
    }
  }
}

TEST(IncrementalRouter, HonoursSingleLayerObstacle) {
  Problem p{Region(10, 4)};
  p.region().add_obstacle({{5, 0}, {5, 3}}, Layer::kMetal1);
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{9, 1}, Layer::kMetal1, false}};
  IncrementalRouter router(p);
  EXPECT_TRUE(router.run().complete());
  const VerifyReport r = verify(p, router.grid());
  EXPECT_TRUE(r.all_ok());
  EXPECT_GE(r.nets[0].vias, 2);  // had to duck onto M2
}

TEST(IncrementalRouter, ReportsHonestFailureWhenImpossible) {
  // A full-height double-layer wall separates the two pins: unroutable.
  Problem p{Region(8, 8)};
  p.region().add_obstacle({{4, 0}, {4, 7}});
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 0), pin(7, 7)};
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  EXPECT_FALSE(out.complete());
  ASSERT_EQ(out.failed.size(), 1u);
  EXPECT_EQ(out.failed[0], a);
  // Failed nets leave no litter.
  EXPECT_EQ(router.grid().node_count(a), 0);
}

TEST(IncrementalRouter, PinOnBothLayersPicksRoutableOne) {
  Problem p{Region(6, 6)};
  p.region().add_obstacle({{0, 2}, {0, 2}}, Layer::kMetal1);
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 2), pin(5, 2)};  // any-layer pin on obstacle cell
  IncrementalRouter router(p);
  EXPECT_TRUE(router.run().complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
  EXPECT_EQ(router.grid().owner({{0, 2}, Layer::kMetal2}), a);
}

TEST(IncrementalRouter, DuplicatePinsHandled) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(1, 1), pin(1, 1), pin(4, 4)};
  IncrementalRouter router(p);
  EXPECT_TRUE(router.run().complete());
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(IncrementalRouter, OrderingOptionsAllComplete) {
  for (const auto ordering : {RouterOptions::Ordering::kMostConstrainedFirst,
                              RouterOptions::Ordering::kLargestFirst,
                              RouterOptions::Ordering::kAsGiven}) {
    Problem p{Region(10, 10)};
    for (int i = 0; i < 4; ++i) {
      const NetId id = p.add_net("n" + std::to_string(i));
      p.net(id).pins = {pin(0, i * 2 + 1), pin(9, i * 2 + 1)};
    }
    RouterOptions opts;
    opts.ordering = ordering;
    IncrementalRouter router(p, opts);
    EXPECT_TRUE(router.run().complete());
    EXPECT_TRUE(verify(p, router.grid()).all_ok());
  }
}

TEST(IncrementalRouter, RouteNetEntryPointRoutesOne) {
  Problem p{Region(8, 8)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 0), pin(7, 7)};
  const NetId b = p.add_net("b");
  p.net(b).pins = {pin(0, 7), pin(7, 0)};
  IncrementalRouter router(p);
  EXPECT_TRUE(router.route_net(a));
  EXPECT_TRUE(net_routed_ok(p, router.grid(), a));
  EXPECT_FALSE(net_routed_ok(p, router.grid(), b));  // untouched
  EXPECT_TRUE(router.route_net(b));
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(IncrementalRouter, UnifiedRouteFunction) {
  const Problem p = straight_pair();
  RouteRequest request;
  request.problem = &p;
  const RouteResult design = route(request);
  EXPECT_TRUE(design.complete());
  EXPECT_TRUE(verify(p, design.grid).all_ok());
}

TEST(IncrementalRouter, StatsExposeSearchEffort) {
  const Problem p = straight_pair(20, 10);
  IncrementalRouter router(p);
  router.run();
  EXPECT_GT(router.stats().expansions, 0);
}

TEST(StubPruner, RemovesDanglingTail) {
  Problem p{Region(8, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 1), pin(4, 1)};
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 6; ++x) g.occupy({{x, 1}, Layer::kMetal1}, a);
  // Cells x=5,6 dangle past the last pin.
  EXPECT_EQ(prune_stubs(p, g, a), 2);
  EXPECT_EQ(g.node_count(a), 5);
  EXPECT_TRUE(net_routed_ok(p, g, a));
}

TEST(StubPruner, KeepsPinStubs) {
  Problem p{Region(8, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 1), pin(6, 1)};  // pin at the very end
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 6; ++x) g.occupy({{x, 1}, Layer::kMetal1}, a);
  EXPECT_EQ(prune_stubs(p, g, a), 0);
}

TEST(StubPruner, PeelsWholeDeadBranch) {
  Problem p{Region(10, 10)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 0), pin(5, 0)};
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 5; ++x) g.occupy({{x, 0}, Layer::kMetal1}, a);
  for (int y = 1; y <= 4; ++y) g.occupy({{3, y}, Layer::kMetal1}, a);  // spur
  EXPECT_EQ(prune_stubs(p, g, a), 4);
  EXPECT_TRUE(net_routed_ok(p, g, a));
}

TEST(StubPruner, RemovesOrphanViaStub) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 0), pin(3, 0)};
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 3; ++x) g.occupy({{x, 0}, Layer::kMetal1}, a);
  g.occupy({{2, 0}, Layer::kMetal2}, a);
  g.add_via({2, 0}, a);
  g.occupy({{2, 1}, Layer::kMetal2}, a);  // M2 spur through the via
  EXPECT_EQ(prune_stubs(p, g, a), 2);
  EXPECT_FALSE(g.has_via({2, 0}));
  EXPECT_TRUE(net_routed_ok(p, g, a));
}

TEST(StubPruner, PruneAllCoversEveryNet) {
  Problem p{Region(8, 8)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {pin(0, 0), pin(3, 0)};
  const NetId b = p.add_net("b");
  p.net(b).pins = {pin(0, 7), pin(3, 7)};
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 5; ++x) {
    g.occupy({{x, 0}, Layer::kMetal1}, a);  // 2 dangling
    g.occupy({{x, 7}, Layer::kMetal1}, b);  // 2 dangling
  }
  EXPECT_EQ(prune_all_stubs(p, g), 4);
}

}  // namespace
}  // namespace gridroute
