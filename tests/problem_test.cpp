#include <gtest/gtest.h>

#include "problem/problem.hpp"

namespace gridroute {
namespace {

TEST(Region, FullRectangleIsRoutableEverywhere) {
  const Region r(5, 4);
  EXPECT_EQ(r.width(), 5);
  EXPECT_EQ(r.height(), 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x) {
      EXPECT_TRUE(r.in_region({x, y}));
      EXPECT_TRUE(r.routable({{x, y}, Layer::kMetal1}));
      EXPECT_TRUE(r.routable({{x, y}, Layer::kMetal2}));
    }
  EXPECT_EQ(r.routable_node_count(), 5 * 4 * 2);
}

TEST(Region, OutOfBoundsIsBlocked) {
  const Region r(3, 3);
  EXPECT_FALSE(r.in_region({-1, 0}));
  EXPECT_FALSE(r.in_region({3, 0}));
  EXPECT_TRUE(r.blocked({{0, 3}, Layer::kMetal1}));
  EXPECT_TRUE(r.blocked({{-1, -1}, Layer::kMetal2}));
}

TEST(Region, SubtractCarvesRectilinearOutline) {
  Region r(6, 6);
  r.subtract({{4, 4}, {5, 5}});  // notch the top-right corner
  EXPECT_FALSE(r.in_region({4, 4}));
  EXPECT_FALSE(r.in_region({5, 5}));
  EXPECT_TRUE(r.in_region({3, 4}));
  EXPECT_TRUE(r.in_region({4, 3}));
  EXPECT_TRUE(r.blocked({{5, 4}, Layer::kMetal1}));
  EXPECT_TRUE(r.blocked({{5, 4}, Layer::kMetal2}));
  EXPECT_EQ(r.routable_node_count(), (36 - 4) * 2);
}

TEST(Region, PerLayerObstacleBlocksOnlyThatLayer) {
  Region r(4, 4);
  r.add_obstacle({{1, 1}, {2, 2}}, Layer::kMetal1);
  EXPECT_TRUE(r.blocked({{1, 1}, Layer::kMetal1}));
  EXPECT_FALSE(r.blocked({{1, 1}, Layer::kMetal2}));
  EXPECT_TRUE(r.in_region({1, 1}));  // still inside the region outline
}

TEST(Region, BothLayerObstacle) {
  Region r(4, 4);
  r.add_obstacle({{0, 0}, {0, 3}});
  for (int y = 0; y < 4; ++y) {
    EXPECT_TRUE(r.blocked({{0, y}, Layer::kMetal1}));
    EXPECT_TRUE(r.blocked({{0, y}, Layer::kMetal2}));
  }
}

TEST(Region, ObstacleClippedToBounds) {
  Region r(3, 3);
  r.add_obstacle({{-5, -5}, {0, 0}});  // mostly outside
  EXPECT_TRUE(r.blocked({{0, 0}, Layer::kMetal1}));
  EXPECT_FALSE(r.blocked({{1, 1}, Layer::kMetal1}));
}

TEST(Problem, AddNetAssignsSequentialIds) {
  Problem p{Region(4, 4)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(p.net_count(), 2);
  EXPECT_EQ(p.net(a).name, "a");
}

TEST(Problem, ValidateAcceptsWellFormed) {
  Problem p{Region(5, 5)};
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{0, 0}, Layer::kMetal1, false});
  p.net(a).pins.push_back({{4, 4}, Layer::kMetal2, false});
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, ValidateFlagsOutOfRegionPin) {
  Problem p{Region(5, 5)};
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{9, 0}, Layer::kMetal1, false});
  const auto issues = p.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("outside"), std::string::npos);
}

TEST(Problem, ValidateFlagsPinOnObstacle) {
  Problem p{Region(5, 5)};
  p.region().add_obstacle({{2, 2}, {2, 2}}, Layer::kMetal1);
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{2, 2}, Layer::kMetal1, false});
  EXPECT_EQ(p.validate().size(), 1u);
  // An any-layer pin survives a single-layer obstacle.
  Problem q{Region(5, 5)};
  q.region().add_obstacle({{2, 2}, {2, 2}}, Layer::kMetal1);
  const NetId b = q.add_net("b");
  q.net(b).pins.push_back({{2, 2}, Layer::kMetal1, true});
  EXPECT_TRUE(q.validate().empty());
}

TEST(Problem, ValidateFlagsCrossNetPinCollision) {
  Problem p{Region(5, 5)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  p.net(a).pins.push_back({{1, 1}, Layer::kMetal1, false});
  p.net(b).pins.push_back({{1, 1}, Layer::kMetal2, false});
  EXPECT_EQ(p.validate().size(), 1u);
}

TEST(Problem, SameNetDuplicatePinAllowed) {
  Problem p{Region(5, 5)};
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{1, 1}, Layer::kMetal1, false});
  p.net(a).pins.push_back({{1, 1}, Layer::kMetal2, false});
  EXPECT_TRUE(p.validate().empty());
}

TEST(Problem, ConnectionCountSumsPinsMinusOne) {
  Problem p{Region(8, 8)};
  const NetId a = p.add_net("a");  // 3 pins -> 2 connections
  p.net(a).pins = {{{0, 0}, Layer::kMetal1, false},
                   {{1, 1}, Layer::kMetal1, false},
                   {{2, 2}, Layer::kMetal1, false}};
  p.add_net("b");                  // 0 pins -> 0
  const NetId c = p.add_net("c");  // 1 pin -> 0
  p.net(c).pins = {{{3, 3}, Layer::kMetal1, false}};
  EXPECT_EQ(p.connection_count(), 2);
}

TEST(ChannelSpec, DensityOfDisjointNetsIsOne) {
  const ChannelSpec c{{1, 1, 0, 2, 2, 0}, {0, 0, 0, 0, 0, 0}};
  EXPECT_EQ(c.density(), 1);
}

TEST(ChannelSpec, DensityCountsCrossingNets) {
  // Net 1 spans [0,3], net 2 spans [1,2], net 3 spans [2,4].
  const ChannelSpec c{{1, 2, 3, 1, 0}, {0, 0, 2, 0, 3}};
  EXPECT_EQ(c.density(), 3);  // column 2 crossed by 1, 2 and 3
}

TEST(ChannelSpec, NetNumbersSortedDistinct) {
  const ChannelSpec c{{3, 1, 0, 3}, {1, 0, 7, 0}};
  EXPECT_EQ(c.net_numbers(), (std::vector<int>{1, 3, 7}));
}

TEST(ChannelSpec, ToProblemLaysOutPinRows) {
  const ChannelSpec c{{1, 0, 2}, {2, 1, 0}};
  const Problem p = c.to_problem(3);
  EXPECT_EQ(p.region().width(), 3);
  EXPECT_EQ(p.region().height(), 5);  // 3 tracks + 2 pin rows
  EXPECT_EQ(p.net_count(), 2);
  EXPECT_TRUE(p.validate().empty());
  // Net numbering is dense in first-appearance order: bottom[0]=2 first.
  EXPECT_EQ(p.net(0).name, "n2");
  EXPECT_EQ(p.net(1).name, "n1");
  // Pins of n1: bottom col 1 (row 0), top col 0 (row 4); committed to M2.
  const Net& n1 = p.net(1);
  ASSERT_EQ(n1.pins.size(), 2u);
  for (const Pin& pin : n1.pins) {
    EXPECT_EQ(pin.layer, Layer::kMetal2);
    EXPECT_FALSE(pin.any_layer);
  }
}

TEST(SwitchboxSpec, ToProblemPlacesAllFourSides) {
  const SwitchboxSpec s{{0, 1, 0},   // top, w=3
                        {0, 2, 0},   // bottom
                        {0, 1, 0, 0},  // left, h=4
                        {0, 0, 2, 0}}; // right
  const Problem p = s.to_problem();
  EXPECT_EQ(p.region().width(), 3);
  EXPECT_EQ(p.region().height(), 4);
  EXPECT_EQ(p.net_count(), 2);
  EXPECT_TRUE(p.validate().empty());
  int total_pins = 0;
  for (const Net& n : p.nets()) total_pins += static_cast<int>(n.pins.size());
  EXPECT_EQ(total_pins, 4);
  for (const Net& n : p.nets())
    for (const Pin& pin : n.pins) EXPECT_TRUE(pin.any_layer);
}

TEST(SwitchboxSpec, NetNumbersAcrossAllSides) {
  const SwitchboxSpec s{{5, 0}, {0, 2}, {9, 0}, {0, 5}};
  EXPECT_EQ(s.net_numbers(), (std::vector<int>{2, 5, 9}));
}

}  // namespace
}  // namespace gridroute
