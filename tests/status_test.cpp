#include "util/status.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gridroute {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_FALSE(s.where().known());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, FactoriesCarryStableCodes) {
  EXPECT_EQ(Status::parse_error("x").code(), ErrorCode::kParse);
  EXPECT_EQ(Status::validation_error("x").code(), ErrorCode::kValidation);
  EXPECT_EQ(Status::resource_error("x").code(), ErrorCode::kResource);
  EXPECT_EQ(Status::cancelled("x").code(), ErrorCode::kCancelled);
  EXPECT_EQ(Status::internal_error("x").code(), ErrorCode::kInternal);
  for (const Status& s :
       {Status::parse_error("x"), Status::validation_error("x"),
        Status::resource_error("x"), Status::cancelled("x"),
        Status::internal_error("x")})
    EXPECT_FALSE(s.ok()) << error_code_name(s.code());
}

TEST(Status, ErrorCodeNamesAreStable) {
  // The names are part of the diagnostic contract (they appear in logs and
  // test matchers); renaming one is a breaking change.
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kParse), "parse");
  EXPECT_STREQ(error_code_name(ErrorCode::kValidation), "validation");
  EXPECT_STREQ(error_code_name(ErrorCode::kResource), "resource");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

TEST(SourceContext, ToStringOmitsUnknownParts) {
  EXPECT_EQ((SourceContext{}).to_string(), "");
  EXPECT_EQ((SourceContext{"f.grid", 0, 0}).to_string(), "f.grid");
  EXPECT_EQ((SourceContext{"", 3, 0}).to_string(), "line 3");
  EXPECT_EQ((SourceContext{"", 3, 7}).to_string(), "line 3, column 7");
  EXPECT_EQ((SourceContext{"f.grid", 3, 7}).to_string(),
            "f.grid: line 3, column 7");
  // Column without a line is meaningless and must not print.
  EXPECT_EQ((SourceContext{"f.grid", 0, 7}).to_string(), "f.grid");
}

TEST(SourceContext, Known) {
  EXPECT_FALSE((SourceContext{}).known());
  EXPECT_TRUE((SourceContext{"f", 0, 0}).known());
  EXPECT_TRUE((SourceContext{"", 1, 0}).known());
}

TEST(Status, ToStringPrefixesLocation) {
  const Status bare = Status::parse_error("bad integer 'x'");
  EXPECT_EQ(bare.to_string(), "bad integer 'x'");
  const Status located =
      Status::parse_error("bad integer 'x'", {"in.grid", 3, 7});
  EXPECT_EQ(located.to_string(), "in.grid: line 3, column 7: bad integer 'x'");
}

TEST(Status, EqualityComparesAllFields) {
  const Status a = Status::parse_error("m", {"s", 1, 2});
  EXPECT_EQ(a, Status::parse_error("m", {"s", 1, 2}));
  EXPECT_NE(a, Status::parse_error("m", {"s", 1, 3}));
  EXPECT_NE(a, Status::parse_error("n", {"s", 1, 2}));
  EXPECT_NE(a, Status::validation_error("m", {"s", 1, 2}));
  EXPECT_EQ(Status{}, Status{});
}

TEST(StatusError, IsRuntimeErrorWithStatusToString) {
  // Legacy contract: call sites written against bare std::runtime_error
  // (and matching "line N" in what()) keep working unchanged.
  const Status s = Status::parse_error("missing side", {"box.grid", 4, 0});
  try {
    throw StatusError(s);
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "box.grid: line 4: missing side");
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
  const StatusError err(s);
  EXPECT_EQ(err.status(), s);
  EXPECT_EQ(err.code(), ErrorCode::kParse);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  EXPECT_TRUE(v.ok());
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  v.value() = 7;
  EXPECT_EQ(*v, 7);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> v = Status::resource_error("too big");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kResource);
  EXPECT_THROW((void)v.value(), StatusError);
  try {
    (void)v.value();
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), v.status());
  }
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  const std::vector<int> out = std::move(v).value();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(StatusOr, OkStatusWithoutValueBecomesInternalError) {
  // A StatusOr must never claim success without carrying a value; an ok
  // Status smuggled in is converted to a loud internal error.
  const StatusOr<int> v = Status();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), ErrorCode::kInternal);
}

TEST(StatusOr, ArrowOperator) {
  const StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace gridroute
