// Problem::canonical_hash() — the serving layer's cache key. The contract
// under test: invariant across spellings of the same problem (net order,
// text-format round trips, classic and layers-N), sensitive to every
// decision-relevant change (geometry, pins, pre-wire, stack).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "bench_suite/suite.hpp"
#include "io/text_format.hpp"
#include "problem/problem.hpp"

namespace gridroute {
namespace {

Problem two_net_box() {
  Problem p{Region(10, 8)};
  const NetId a = p.add_net("alpha");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{9, 6}, Layer::kMetal2, false}};
  const NetId b = p.add_net("beta");
  p.net(b).pins = {{{0, 6}, Layer::kMetal1, true},
                   {{9, 1}, Layer::kMetal1, false}};
  return p;
}

TEST(CanonicalHash, DeterministicAndCopyStable) {
  const Problem p = two_net_box();
  const Problem copy = p;
  EXPECT_EQ(p.canonical_hash(), p.canonical_hash());
  EXPECT_EQ(p.canonical_hash(), copy.canonical_hash());
}

TEST(CanonicalHash, NetDeclarationOrderInvariant) {
  const Problem forward = two_net_box();
  Problem reversed{Region(10, 8)};
  const NetId b = reversed.add_net("beta");
  reversed.net(b).pins = {{{0, 6}, Layer::kMetal1, true},
                          {{9, 1}, Layer::kMetal1, false}};
  const NetId a = reversed.add_net("alpha");
  reversed.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                          {{9, 6}, Layer::kMetal2, false}};
  EXPECT_EQ(forward.canonical_hash(), reversed.canonical_hash());
}

TEST(CanonicalHash, TextRoundTripPreservesHashClassic) {
  // A region with a carved outline and per-layer obstructions: the writer
  // re-spells it cell-granularly, which must not move the hash.
  Problem p = suite::macrocell_region(7);
  const auto parsed = try_parse_problem_string(problem_to_string(p));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->canonical_hash(), p.canonical_hash());
}

TEST(CanonicalHash, TextRoundTripPreservesHashLayersN) {
  const Problem p = suite::multilayer_region(3, 16, 12, 6, LayerStack(4));
  ASSERT_EQ(p.region().layer_count(), 4);
  const auto parsed = try_parse_problem_string(problem_to_string(p));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->region().layer_count(), 4);
  EXPECT_EQ(parsed->canonical_hash(), p.canonical_hash());
}

TEST(CanonicalHash, SensitiveToRegionGeometry) {
  const std::uint64_t base = two_net_box().canonical_hash();

  Problem taller{Region(10, 9)};
  {
    Problem proto = two_net_box();
    for (const Net& n : proto.nets()) taller.add_net(n);
  }
  EXPECT_NE(taller.canonical_hash(), base);

  Problem notched = two_net_box();
  notched.region().subtract({{4, 0}, {5, 0}});
  EXPECT_NE(notched.canonical_hash(), base);

  Problem obstructed = two_net_box();
  obstructed.region().add_obstacle({{4, 2}, {5, 5}}, Layer::kMetal1);
  EXPECT_NE(obstructed.canonical_hash(), base);

  // The same rectangle on the other layer is a different problem again.
  Problem obstructed_m2 = two_net_box();
  obstructed_m2.region().add_obstacle({{4, 2}, {5, 5}}, Layer::kMetal2);
  EXPECT_NE(obstructed_m2.canonical_hash(), obstructed.canonical_hash());
}

TEST(CanonicalHash, SensitiveToPins) {
  const std::uint64_t base = two_net_box().canonical_hash();

  Problem moved = two_net_box();
  moved.net(0).pins[1].pos = {9, 5};
  EXPECT_NE(moved.canonical_hash(), base);

  Problem relayered = two_net_box();
  relayered.net(0).pins[1].layer = Layer::kMetal1;
  EXPECT_NE(relayered.canonical_hash(), base);

  Problem freed = two_net_box();
  freed.net(0).pins[0].any_layer = true;
  EXPECT_NE(freed.canonical_hash(), base);
}

TEST(CanonicalHash, SensitiveToPrewireAndFixedness) {
  const std::uint64_t base = two_net_box().canonical_hash();

  Problem prewired = two_net_box();
  prewired.net(0).prewire.push_back(
      {{{2, 1}, Layer::kMetal1}, {{5, 1}, Layer::kMetal1}});
  EXPECT_NE(prewired.canonical_hash(), base);

  Problem via0 = prewired;
  via0.net(0).previas.push_back({{2, 1}, 0});
  EXPECT_NE(via0.canonical_hash(), prewired.canonical_hash());

  // Same via position, different cut: distinct on a tall stack.
  Problem via1 = via0;
  via1.net(0).previas[0].cut = 1;
  EXPECT_NE(via1.canonical_hash(), via0.canonical_hash());

  Problem pinned = two_net_box();
  pinned.net(1).fixed = true;
  EXPECT_NE(pinned.canonical_hash(), base);
}

TEST(CanonicalHash, SensitiveToNetIdentity) {
  const std::uint64_t base = two_net_box().canonical_hash();

  Problem renamed = two_net_box();
  renamed.net(0).name = "gamma";
  EXPECT_NE(renamed.canonical_hash(), base);

  Problem extended = two_net_box();
  extended.add_net("gamma");  // even an empty net changes the problem
  EXPECT_NE(extended.canonical_hash(), base);
}

TEST(CanonicalHash, SensitiveToLayerStack) {
  Problem classic{Region(12, 10)};
  const std::uint64_t base = classic.canonical_hash();

  Problem tall{Region(12, 10, LayerStack(4))};
  EXPECT_NE(tall.canonical_hash(), base);

  // Same height, different per-layer economics.
  Problem priced{Region(12, 10, LayerStack(4))};
  LayerStack stack(4);
  stack.spec(layer_at(2)).wrong_way_mult = 4;
  Problem costly{Region(12, 10, stack)};
  EXPECT_NE(costly.canonical_hash(), priced.canonical_hash());

  LayerStack hard(4);
  hard.spec(layer_at(1)).directed = true;
  Problem directed{Region(12, 10, hard)};
  EXPECT_NE(directed.canonical_hash(), priced.canonical_hash());
}

TEST(CanonicalHash, SuiteProblemsHashDistinctly) {
  // Smoke check against accidental collisions across the benchmark family.
  const std::uint64_t a = suite::dense_switchbox().to_problem().canonical_hash();
  const std::uint64_t b = suite::cross_switchbox().to_problem().canonical_hash();
  const std::uint64_t c = suite::macrocell_region(7).canonical_hash();
  const std::uint64_t d =
      suite::burstein_class_switchbox(31).to_problem().canonical_hash();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
  EXPECT_NE(b, d);
  EXPECT_NE(c, d);
}

}  // namespace
}  // namespace gridroute
