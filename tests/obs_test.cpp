#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <sstream>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "obs/budget.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// Unbounded collecting sink for golden-trace comparisons (ReplaySink is a
/// ring and would drop the head of a long run).
class VectorSink : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  /// Events stably sorted by attempt id: concurrent attempts interleave
  /// arbitrarily, but each attempt's own subsequence is in emission order.
  std::vector<obs::TraceEvent> by_attempt() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<obs::TraceEvent> sorted = events_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       return a.attempt < b.attempt;
                     });
    return sorted;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<obs::TraceEvent> events_;
};

TEST(Trace, EventNamesAreStable) {
  EXPECT_STREQ(obs::event_name(obs::EventKind::kNetStart), "net_start");
  EXPECT_STREQ(obs::event_name(obs::EventKind::kStrongRipup), "strong_ripup");
  EXPECT_STREQ(obs::event_name(obs::EventKind::kBudgetExhausted),
               "budget_exhausted");
}

TEST(Trace, OffByDefault) {
  // A router without a sink must emit nowhere (the zero-overhead contract's
  // functional half): same routing result, no observable trace.
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  EXPECT_TRUE(result.complete());
}

TEST(Trace, CountsMatchStats) {
  // The event stream and the metrics registry are two views of the same
  // decisions; their aggregates must agree exactly.
  const Problem p = suite::dense_switchbox().to_problem();
  obs::CountingSink counts;
  RouteRequest request;
  request.problem = &p;
  request.trace = &counts;
  const RouteResult result = route(request);

  EXPECT_EQ(counts.count(obs::EventKind::kNetStart),
            result.stats.nets_attempted);
  EXPECT_EQ(counts.count(obs::EventKind::kNetSuccess) +
                counts.count(obs::EventKind::kNetFail),
            result.stats.nets_attempted);
  EXPECT_EQ(counts.count(obs::EventKind::kWeakOutcome),
            result.stats.weak_attempts);
  // Every connection needs at least one kernel query.
  EXPECT_GE(counts.count(obs::EventKind::kSearchQuery),
            result.stats.connections_attempted);
}

TEST(Trace, StrongRipupCarriesVictims) {
  // The overfilled box forces strong modification; every rip-up victim must
  // appear in some kStrongRipup event's net list.
  const Problem p = suite::overfilled_switchbox().to_problem();
  obs::ReplaySink replay(1 << 16);
  RouteRequest request;
  request.problem = &p;
  request.trace = &replay;
  const RouteResult result = route(request);

  long long victims = 0;
  for (const obs::TraceEvent& e : replay.events())
    if (e.kind == obs::EventKind::kStrongRipup) {
      EXPECT_FALSE(e.nets.empty());
      victims += static_cast<long long>(e.nets.size());
    }
  EXPECT_EQ(victims, result.stats.strong_ripups);
}

TEST(GoldenTrace, DeterministicAcrossThreadCounts) {
  // Multi-start on a box nothing completes on: no early cancellation, so
  // every attempt runs to the end on every thread count and the trace —
  // sorted by attempt id — must be byte-identical for 1, 4, and 8 threads.
  const Problem p = suite::overfilled_switchbox().to_problem();
  std::vector<obs::TraceEvent> golden;
  for (const int threads : {1, 4, 8}) {
    VectorSink sink;
    RouteRequest request;
    request.problem = &p;
    request.options.threads = threads;
    request.extra_attempts = 3;
    request.trace = &sink;
    const RouteResult result = route(request);
    EXPECT_FALSE(result.complete());
    const std::vector<obs::TraceEvent> sorted = sink.by_attempt();
    if (threads == 1) {
      golden = sorted;
      ASSERT_FALSE(golden.empty());
    } else {
      EXPECT_EQ(sorted, golden) << "trace diverged at " << threads
                                << " threads";
    }
  }
}

TEST(Sinks, JsonlFormat) {
  obs::TraceEvent e = obs::TraceEvent::weak_probe(3, 1, 5, true);
  e.attempt = 2;
  EXPECT_EQ(obs::JsonlSink::format(e),
            "{\"event\":\"weak_probe\",\"attempt\":2,\"net\":3,\"value\":1,"
            "\"extra\":5,\"ok\":true}");

  obs::TraceEvent ripup = obs::TraceEvent::strong_ripup(1, 14, {2, 4});
  EXPECT_EQ(obs::JsonlSink::format(ripup),
            "{\"event\":\"strong_ripup\",\"attempt\":0,\"net\":1,\"value\":14,"
            "\"extra\":0,\"ok\":false,\"nets\":[2,4]}");

  // Non-net-scoped events omit the net field.
  const obs::TraceEvent won = obs::TraceEvent::attempt_won(true);
  EXPECT_EQ(obs::JsonlSink::format(won),
            "{\"event\":\"attempt_won\",\"attempt\":0,\"value\":0,"
            "\"extra\":0,\"ok\":true}");
}

TEST(Sinks, JsonlWritesOneLinePerEvent) {
  std::ostringstream out;
  obs::JsonlSink sink(out);
  sink.on_event(obs::TraceEvent::net_start(0));
  sink.on_event(obs::TraceEvent::net_done(true, 0, 1));
  EXPECT_EQ(sink.lines(), 2);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_NE(text.find("\"event\":\"net_start\""), std::string::npos);
}

TEST(Sinks, ReplayRingKeepsNewest) {
  obs::ReplaySink replay(3);
  for (int net = 0; net < 5; ++net)
    replay.on_event(obs::TraceEvent::net_start(net));
  EXPECT_EQ(replay.dropped(), 2);
  const std::vector<obs::TraceEvent> events = replay.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().net, 2);  // oldest surviving
  EXPECT_EQ(events.back().net, 4);   // newest
}

TEST(Metrics, RegistryHandlesAreStable) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("alpha");
  a.add(2);
  registry.counter("beta").add(1);       // may rebalance the map
  EXPECT_EQ(&a, &registry.counter("alpha"));  // address survives
  a.add(3);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("alpha"), 5);
  EXPECT_EQ(snapshot.counter("beta"), 1);
  EXPECT_EQ(snapshot.counter("missing"), 0);
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");  // sorted export
}

TEST(Metrics, TimerBucketsAndExport) {
  obs::MetricsRegistry registry;
  obs::Timer& t = registry.timer("phase");
  t.record_ms(0.5);
  t.record_ms(3.0);
  t.record_ms(3.5);
  EXPECT_EQ(t.count(), 3);
  EXPECT_DOUBLE_EQ(t.total_ms(), 7.0);
  EXPECT_DOUBLE_EQ(t.min_ms(), 0.5);
  EXPECT_DOUBLE_EQ(t.max_ms(), 3.5);
  EXPECT_EQ(t.buckets()[0], 1);  // < 1 ms
  EXPECT_EQ(t.buckets()[2], 2);  // [2, 4) ms

  std::ostringstream text, json;
  obs::write_text(registry.snapshot(), text);
  obs::write_json(registry.snapshot(), json);
  EXPECT_NE(text.str().find("phase"), std::string::npos);
  EXPECT_NE(json.str().find("\"phase\""), std::string::npos);
  EXPECT_NE(json.str().find("\"count\":3"), std::string::npos);
}

TEST(Metrics, RouterPublishesRegistry) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  // RouteStats is a snapshot view over the registry: both must agree.
  EXPECT_EQ(result.metrics.counter("expansions"), result.stats.expansions);
  EXPECT_EQ(result.metrics.counter("nets_routed"), result.stats.nets_routed);
}

TEST(Budget, ExpansionCapGivesVerifiablePartial) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  request.budget.max_expansions = 60;  // far less than a full run needs
  obs::CountingSink counts;
  request.trace = &counts;
  const RouteResult result = route(request);

  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(counts.count(obs::EventKind::kBudgetExhausted), 1);
  // Partial but clean: whatever routed verifies, and the failed list names
  // exactly the multi-pin nets that are not done.
  const VerifyReport report = verify(p, result.grid);
  EXPECT_TRUE(report.drc_clean());
  for (NetId id = 0; id < p.net_count(); ++id) {
    if (p.net(id).pins.size() < 2 || p.net(id).fixed) continue;
    const bool listed = std::find(result.failed.begin(), result.failed.end(),
                                  id) != result.failed.end();
    EXPECT_EQ(net_routed_ok(p, result.grid, id), !listed) << "net " << id;
  }
}

TEST(Budget, ExpansionCapIsDeterministic) {
  const Problem p = suite::dense_switchbox().to_problem();
  auto run_budgeted = [&] {
    RouteRequest request;
    request.problem = &p;
    request.budget.max_expansions = 200;
    return route(request);
  };
  const RouteResult a = run_budgeted();
  const RouteResult b = run_budgeted();
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.stats.expansions, b.stats.expansions);
  EXPECT_EQ(a.grid.total_nodes(), b.grid.total_nodes());
}

TEST(Budget, UnlimitedByDefault) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_TRUE(result.complete());
}

TEST(Budget, GaugeForkRestartsExpansions) {
  const obs::RunBudget budget{/*wall_ms=*/0, /*max_expansions=*/100};
  obs::BudgetGauge gauge(budget);
  gauge.charge(100);
  EXPECT_TRUE(gauge.expansions_exhausted());
  const obs::BudgetGauge forked = gauge.fork();
  EXPECT_FALSE(forked.expansions_exhausted());
  EXPECT_EQ(forked.expansions_left(), 100);
}

TEST(Stats, ImproveAccumulatesWallTime) {
  // Regression: improve() used to leave wall_ms covering run() only (and a
  // later snapshot could overwrite the run time). The phases must be
  // reported distinctly and the total must be their sum.
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  const RouteOutcome outcome = router.run();
  ASSERT_TRUE(outcome.complete());
  const RouteStats after_run = router.stats();
  EXPECT_GT(after_run.run_ms, 0.0);
  EXPECT_DOUBLE_EQ(after_run.improve_ms, 0.0);
  EXPECT_DOUBLE_EQ(after_run.wall_ms, after_run.run_ms);

  router.improve(2);
  const RouteStats after_improve = router.stats();
  EXPECT_DOUBLE_EQ(after_improve.run_ms, after_run.run_ms);  // untouched
  EXPECT_GT(after_improve.improve_ms, 0.0);
  EXPECT_DOUBLE_EQ(after_improve.wall_ms,
                   after_improve.run_ms + after_improve.improve_ms);
}

}  // namespace
}  // namespace gridroute
