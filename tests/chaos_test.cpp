// Chaos/soak harness for the RoutingService resilience layer (DESIGN.md
// §2.5): seed-deterministic fault schedules fired at every fault::Site —
// the route()-level sites and the service-scoped ones — under a mixed
// plain/cached/session/delta workload, asserting the supervision
// invariants:
//
//   1. Every submitted job reaches exactly one terminal outcome: wait()
//      returns a typed state for every id, and a second wait is an error
//      (the record was consumed exactly once). No waiter ever hangs.
//   2. The cache is never poisoned: a from_cache result is bit-identical
//      to the clean direct route() baseline of its problem.
//   3. A session's committed base layout survives any mid-delta fault —
//      the layout pointer is always one of the results that completed
//      cleanly, never a torn intermediate.
//   4. After every fault the service still routes a clean job
//      bit-identically to an unfaulted direct route().
//   5. A worker killed mid-job provably respawns: health() shows the pool
//      restored, the trace ledger carries kWorkerDied/kWorkerRespawned,
//      and the killed job's waiter still gets a typed outcome.
//
// GRIDROUTE_CHAOS_INSTANCES shrinks the seeded soak (default 60); the
// sanitizer legs of scripts/tier1.sh set it low so TSan's slowdown stays
// inside the timeout. The per-site storm section always runs in full —
// it is the acceptance gate that every site is survivable.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "fault/fault.hpp"
#include "io/solution_format.hpp"
#include "obs/sinks.hpp"
#include "service/routing_service.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace gridroute::service {
namespace {

int soak_budget() {
  if (const char* env = std::getenv("GRIDROUTE_CHAOS_INSTANCES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 60;
}

/// Decision-relevant render of a result (layout + failures + deterministic
/// counters); two runs are bit-identical iff these match.
std::string artifact(const Problem& p, const RouteResult& r) {
  std::ostringstream out;
  out << solution_to_string(p, r.grid);
  out << "failed:";
  for (NetId id : r.failed) out << ' ' << id;
  out << "\nstats: " << r.stats.nets_routed << ' '
      << r.stats.connections_routed << ' ' << r.stats.expansions;
  return std::move(out).str();
}

std::string direct_baseline(const Problem& p) {
  RouteRequest request;
  request.problem = &p;
  return artifact(p, route(request));
}

std::shared_ptr<const Problem> chaos_problem(std::uint64_t seed) {
  return std::make_shared<const Problem>(
      suite::random_switchbox(seed, 12, 9, 5 + seed % 3).to_problem());
}

/// One chaos run: a service with `faults` armed, a mixed workload driven
/// through it, every invariant checked.
void run_chaos_instance(fault::Injector* faults, int workers, int max_retries,
                        std::uint64_t problem_seed,
                        const std::string& plan_label) {
  obs::CountingSink trace;
  ServiceOptions options;
  options.workers = workers;
  options.max_queue_depth = 64;
  options.cache_capacity = 16;
  options.max_retries = max_retries;
  options.trace = &trace;
  options.faults = faults;

  const auto pa = chaos_problem(problem_seed);
  const auto pb = chaos_problem(problem_seed + 1);
  const auto ps = chaos_problem(problem_seed + 2);
  const std::string baseline_a = direct_baseline(*pa);
  const std::string baseline_b = direct_baseline(*pb);

  std::vector<std::uint64_t> ids;
  std::optional<SessionTicket> ticket;
  {
    RoutingService service(options);

    // Plain jobs: pa twice (cache-eligible — the second may be served from
    // the cache), pb once fresh.
    JobRequest ja1;
    ja1.problem = pa;
    JobRequest ja2;
    ja2.problem = pa;
    JobRequest jb;
    jb.problem = pb;
    for (JobRequest* r : {&ja1, &ja2, &jb}) {
      auto id = service.submit(std::move(*r));
      ASSERT_TRUE(id.ok()) << plan_label << ": " << id.status().to_string();
      ids.push_back(*id);
    }

    // A session with two deltas layered on it.
    JobRequest base;
    base.problem = ps;
    base.use_cache = false;
    auto opened = service.open_session(std::move(base));
    ASSERT_TRUE(opened.ok()) << plan_label;
    ticket = *opened;
    ids.push_back(ticket->base_job);
    const auto base_outcome = service.wait(ticket->base_job);
    ASSERT_TRUE(base_outcome.ok()) << plan_label;
    std::shared_ptr<const RouteResult> base_result = base_outcome->result;
    const bool base_committed = base_outcome->state == JobState::kCompleted &&
                                base_outcome->result != nullptr &&
                                base_outcome->result->status.ok() &&
                                base_outcome->fault_history.empty();

    std::shared_ptr<const RouteResult> d1_result, d2_result;
    if (base_committed) {
      DeltaJobRequest d1;
      d1.edit.move_pins.push_back({0, 0, {6, 4}});
      auto id1 = service.submit_delta(ticket->session, d1);
      if (id1.ok()) {
        const auto o = service.wait(*id1);
        ASSERT_TRUE(o.ok()) << plan_label;
        d1_result = o->result;
      }
      DeltaJobRequest d2;
      d2.edit.add_obstacles.push_back(
          {{{3, 3}, {3, 3}}, Layer::kMetal1, true});
      auto id2 = service.submit_delta(ticket->session, d2);
      if (id2.ok()) {
        const auto o = service.wait(*id2);
        ASSERT_TRUE(o.ok()) << plan_label;
        d2_result = o->result;
      }
    }

    // Invariant 1: every remaining waiter gets exactly one typed terminal
    // outcome — and the record is consumed exactly once.
    for (std::uint64_t id : ids) {
      if (ticket.has_value() && id == ticket->base_job) continue;  // waited
      const auto outcome = service.wait(id);
      ASSERT_TRUE(outcome.ok())
          << plan_label << ": waiter lost for job " << id;
      EXPECT_TRUE(outcome->state == JobState::kCompleted ||
                  outcome->state == JobState::kCancelled ||
                  outcome->state == JobState::kFailed)
          << plan_label << ": non-terminal outcome for job " << id;
      // Invariant 2: a cache-served result is bit-identical to the clean
      // direct baseline — degraded results must never have been inserted.
      if (outcome->from_cache) {
        ASSERT_NE(outcome->result, nullptr) << plan_label;
        const std::string& expected =
            outcome->problem == pa ? baseline_a : baseline_b;
        EXPECT_EQ(artifact(*outcome->problem, *outcome->result), expected)
            << plan_label << ": poisoned cache entry served to job " << id;
      }
      // Any result delivered — full or partial — verifies clean.
      if (outcome->result != nullptr)
        EXPECT_TRUE(
            verify(*outcome->problem, outcome->result->grid).drc_clean())
            << plan_label;
      const auto again = service.wait(id);
      EXPECT_FALSE(again.ok())
          << plan_label << ": job " << id << " finalized twice";
    }

    // Invariant 3: the session's committed layout is one of the cleanly
    // completed results (or absent) — never a torn intermediate.
    const auto info = service.session_info(ticket->session);
    ASSERT_TRUE(info.has_value()) << plan_label;
    EXPECT_FALSE(info->busy) << plan_label;
    const RouteResult* layout = info->layout.get();
    EXPECT_TRUE(layout == nullptr || layout == base_result.get() ||
                layout == d1_result.get() || layout == d2_result.get())
        << plan_label << ": session committed a layout no job produced";
    if (layout != nullptr)
      EXPECT_TRUE(verify(*info->problem, layout->grid).drc_clean())
          << plan_label;

    // Invariant 5: a worker kill provably heals the pool. The supervisor
    // respawns dead seats asynchronously, so poll (bounded) until the pool
    // is whole again rather than racing the respawn.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    ServiceHealth health = service.health();
    while ((health.workers_alive != workers || health.running_jobs != 0) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      health = service.health();
    }
    EXPECT_EQ(health.workers_alive, workers)
        << plan_label << ": pool not restored";
    EXPECT_EQ(health.running_jobs, 0) << plan_label;
    if (faults != nullptr && faults->fired() &&
        (faults->site() == fault::Site::kJobDequeue ||
         faults->site() == fault::Site::kWorkerBody)) {
      EXPECT_GE(health.workers_respawned, 1) << plan_label;
      EXPECT_GE(trace.count(obs::EventKind::kWorkerDied), 1) << plan_label;
      EXPECT_GE(trace.count(obs::EventKind::kWorkerRespawned), 1)
          << plan_label;
    }

    // Invariant 4: after the fault, a clean fresh job (cache bypassed)
    // routes bit-identically to an unfaulted direct route().
    JobRequest clean;
    clean.problem = pb;
    clean.use_cache = false;
    const auto clean_id = service.submit(std::move(clean));
    ASSERT_TRUE(clean_id.ok()) << plan_label;
    const auto clean_outcome = service.wait(*clean_id);
    ASSERT_TRUE(clean_outcome.ok()) << plan_label;
    ASSERT_EQ(clean_outcome->state, JobState::kCompleted) << plan_label;
    ASSERT_NE(clean_outcome->result, nullptr) << plan_label;
    EXPECT_EQ(artifact(*pb, *clean_outcome->result), baseline_b)
        << plan_label << ": post-fault routing diverged";

    service.shutdown();
  }
}

TEST(Chaos, EverySiteStorm) {
  // The acceptance gate: for every fault::Site (route-level and
  // service-scoped) and two arrival depths, the mixed workload survives
  // with all invariants intact. Arrival 1 always fires; the deeper arrival
  // exercises schedules that land mid-stream (or never — in which case the
  // run must be equivalent to a fault-free one, which the same invariants
  // cover).
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    for (const long long arrival : {1LL, 3LL}) {
      fault::Injector injector = fault::Injector::at(site, arrival);
      const std::string label = std::string("storm ") + injector.plan();
      run_chaos_instance(&injector, /*workers=*/2, /*max_retries=*/1,
                         /*problem_seed=*/1000 + s * 7 +
                             static_cast<std::uint64_t>(arrival),
                         label);
      if (testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Chaos, SeededSoak) {
  // Seed-driven schedules: the injector picks site and arrival from the
  // seed, the workload shape varies with the seed, and every instance is
  // reproducible from its seed alone.
  const int budget = soak_budget();
  for (int seed = 1; seed <= budget; ++seed) {
    fault::Injector injector(static_cast<std::uint64_t>(seed),
                             /*max_arrival=*/24);
    const std::string label =
        "soak seed=" + std::to_string(seed) + " " + injector.plan();
    run_chaos_instance(&injector, /*workers=*/1 + seed % 3,
                       /*max_retries=*/seed % 3,
                       /*problem_seed=*/2000 + static_cast<std::uint64_t>(seed),
                       label);
    if (testing::Test::HasFatalFailure()) return;
  }
}

TEST(Chaos, UnfiredScheduleIsBitIdenticalToFaultFree) {
  // A schedule whose arrival is never reached must leave the service
  // byte-identical to one with no injector at all — probing an unarmed
  // site is free.
  const auto p = chaos_problem(77);
  const std::string baseline = direct_baseline(*p);
  fault::Injector injector =
      fault::Injector::at(fault::Site::kWorkerBody, 1000000);
  ServiceOptions options;
  options.faults = &injector;
  RoutingService service(options);
  JobRequest request;
  request.problem = p;
  request.use_cache = false;
  const auto outcome = service.wait(*service.submit(std::move(request)));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->state, JobState::kCompleted);
  EXPECT_EQ(artifact(*p, *outcome->result), baseline);
  EXPECT_FALSE(injector.fired());
  EXPECT_EQ(service.health().workers_respawned, 0);
}

}  // namespace
}  // namespace gridroute::service
