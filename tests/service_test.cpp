// RoutingService tests: the serving layer's determinism contract (results
// bit-identical to direct route(RouteRequest), fresh or cached), admission
// control, deadlines/cancellation, and the job lifecycle event stream.
// scripts/tier1.sh re-runs this binary under ThreadSanitizer.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/solution_format.hpp"
#include "obs/sinks.hpp"
#include "service/routing_service.hpp"
#include "verify/verify.hpp"

namespace gridroute::service {
namespace {

/// Everything decision-relevant a result carries, rendered to one string:
/// the exact layout, the failure list, and the deterministic counters
/// (wall-clock fields deliberately excluded). Two runs are "bit-identical"
/// iff these strings match.
std::string artifact(const Problem& p, const RouteResult& r) {
  std::ostringstream out;
  out << solution_to_string(p, r.grid);
  out << "failed:";
  for (NetId id : r.failed) out << ' ' << id;
  const RouteStats& s = r.stats;
  out << "\nstats: " << s.nets_attempted << ' ' << s.nets_routed << ' '
      << s.connections_attempted << ' ' << s.connections_routed << ' '
      << s.weak_modifications << ' ' << s.weak_attempts << ' '
      << s.strong_ripups << ' ' << s.expansions;
  out << "\nwinner: " << r.winning_attempt << ' ' << r.winning_seed << ' '
      << r.total_expansions;
  return std::move(out).str();
}

RouteResult direct_route(const Problem& p, int extra_attempts = 0) {
  RouteRequest request;
  request.problem = &p;
  request.extra_attempts = extra_attempts;
  return route(request);
}

JobRequest job_for(const std::shared_ptr<const Problem>& p,
                   int extra_attempts = 0) {
  JobRequest request;
  request.problem = p;
  request.extra_attempts = extra_attempts;
  return request;
}

/// A problem saturated enough that no run ever completes — and large
/// enough that a run takes real time, which the deadline and cancellation
/// tests rely on.
std::shared_ptr<const Problem> slow_problem() {
  const ChannelSpec spec = suite::deutsch_class_channel(1976, 174, 19);
  return std::make_shared<const Problem>(
      spec.to_problem(spec.density() - 1));  // one track short: infeasible
}

TEST(Service, SingleJobMatchesDirectRoute) {
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  const RouteResult baseline = direct_route(*p);

  RoutingService service;
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome->state, JobState::kCompleted);
  EXPECT_TRUE(outcome->status.ok());
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_EQ(artifact(*p, *outcome->result), artifact(*p, baseline));
}

TEST(Service, MultiStartJobMatchesDirectRoute) {
  const auto p = std::make_shared<const Problem>(
      suite::overfilled_switchbox().to_problem());
  const RouteResult baseline = direct_route(*p, 3);

  RoutingService service;
  const auto id = service.submit(job_for(p, 3));
  ASSERT_TRUE(id.ok());
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_EQ(artifact(*p, *outcome->result), artifact(*p, baseline));
}

TEST(Service, ConcurrentClientsBitIdenticalToSerial) {
  // N client threads x M jobs over a pool of distinct problems, against a
  // multi-worker service. Every delivered result — fresh or cached — must
  // equal the serial route(RouteRequest) baseline of its problem.
  std::vector<std::shared_ptr<const Problem>> problems;
  problems.push_back(std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem()));
  problems.push_back(std::make_shared<const Problem>(
      suite::burstein_class_switchbox(31).to_problem()));
  problems.push_back(std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem()));
  problems.push_back(
      std::make_shared<const Problem>(suite::macrocell_region(7)));

  std::vector<std::string> baselines;
  baselines.reserve(problems.size());
  for (const auto& p : problems)
    baselines.push_back(artifact(*p, direct_route(*p)));

  ServiceOptions options;
  options.workers = 4;
  options.max_queue_depth = 256;
  RoutingService service(options);

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 3;
  std::vector<int> mismatches(kClients, -1);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      int bad = 0;
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::size_t which =
            static_cast<std::size_t>(c + j) % problems.size();
        JobRequest request = job_for(problems[which]);
        // Odd jobs bypass the cache so fresh execution stays exercised
        // even once every problem has a cached result.
        request.use_cache = (j % 2) == 0;
        const auto id = service.submit(std::move(request));
        if (!id.ok()) {
          ++bad;
          continue;
        }
        const auto outcome = service.wait(*id);
        if (!outcome.ok() || outcome->state != JobState::kCompleted ||
            outcome->result == nullptr ||
            artifact(*problems[which], *outcome->result) != baselines[which])
          ++bad;
      }
      mismatches[static_cast<std::size_t>(c)] = bad;
    });
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0) << "client " << c;

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kJobsPerClient);
  EXPECT_EQ(stats.admitted, kClients * kJobsPerClient);
  EXPECT_EQ(stats.completed, kClients * kJobsPerClient);
}

TEST(Service, CacheHitIsBitIdenticalAndMarked) {
  const auto p = std::make_shared<const Problem>(
      suite::burstein_class_switchbox(31).to_problem());
  RoutingService service;

  const auto first = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);

  const auto second = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  ASSERT_NE(second->result, nullptr);
  EXPECT_EQ(artifact(*p, *second->result), artifact(*p, *first->result));
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(Service, NetOrderTwinsShareAHashButNotResults) {
  // Two spellings of "the same" problem with nets declared in opposite
  // order: canonical_hash treats them as equal, but NetIds (and therefore
  // routed layouts) differ — the cache's exact-identity confirm must keep
  // them apart, and each must still match its own direct baseline.
  Problem forward{Region(10, 8)};
  {
    const NetId a = forward.add_net("alpha");
    forward.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                           {{9, 6}, Layer::kMetal1, false}};
    const NetId b = forward.add_net("beta");
    forward.net(b).pins = {{{0, 6}, Layer::kMetal1, false},
                           {{9, 1}, Layer::kMetal1, false}};
  }
  Problem reversed{Region(10, 8)};
  {
    const NetId b = reversed.add_net("beta");
    reversed.net(b).pins = {{{0, 6}, Layer::kMetal1, false},
                            {{9, 1}, Layer::kMetal1, false}};
    const NetId a = reversed.add_net("alpha");
    reversed.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                            {{9, 6}, Layer::kMetal1, false}};
  }
  ASSERT_EQ(forward.canonical_hash(), reversed.canonical_hash());

  const auto pf = std::make_shared<const Problem>(forward);
  const auto pr = std::make_shared<const Problem>(reversed);
  RoutingService service;
  const auto first = service.wait(*service.submit(job_for(pf)));
  const auto second = service.wait(*service.submit(job_for(pr)));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);  // a hash hit must not certify identity
  EXPECT_EQ(artifact(*pf, *first->result), artifact(*pf, direct_route(*pf)));
  EXPECT_EQ(artifact(*pr, *second->result), artifact(*pr, direct_route(*pr)));
}

TEST(Service, BudgetedRunsAreNotCached) {
  // A budgeted run's outcome is not a pure function of (problem, options),
  // so it must neither come from nor land in the cache.
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  RoutingService service;

  JobRequest budgeted = job_for(p);
  budgeted.budget.max_expansions = 1000000;
  const auto first = service.wait(*service.submit(std::move(budgeted)));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);

  JobRequest again = job_for(p);
  again.budget.max_expansions = 1000000;
  const auto second = service.wait(*service.submit(std::move(again)));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  EXPECT_EQ(service.stats().cache_hits, 0);
}

TEST(Service, QueueDepthBoundRejects) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.workers = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;  // keep both jobs queued deterministically
  RoutingService service(options);

  const auto first = service.submit(job_for(p));
  const auto second = service.submit(job_for(p));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  const auto third = service.submit(job_for(p));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), ErrorCode::kResource);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1);
  EXPECT_EQ(stats.queue_depth, 2);
  EXPECT_EQ(stats.peak_queue_depth, 2);

  service.resume();
  EXPECT_TRUE(service.wait(*first).ok());
  EXPECT_TRUE(service.wait(*second).ok());
}

TEST(Service, PrescreenRejectsProvablyInfeasible) {
  // 10 corner-to-corner nets on a 3x3 region: HPWL demand 50 against 18
  // routable nodes. Utilization > 1 proves infeasibility before routing.
  auto infeasible = std::make_shared<Problem>(Region(3, 3));
  for (int i = 0; i < 10; ++i) {
    const NetId id = infeasible->add_net("n" + std::to_string(i));
    infeasible->net(id).pins = {{{0, 0}, Layer::kMetal1, false},
                                {{2, 2}, Layer::kMetal1, false}};
  }
  EXPECT_GT(estimated_utilization(*infeasible), 1.0);

  ServiceOptions options;
  options.prescreen = true;
  RoutingService service(options);
  const auto id = service.submit(
      job_for(std::shared_ptr<const Problem>(infeasible)));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), ErrorCode::kResource);
  EXPECT_EQ(service.stats().rejected_prescreen, 1);

  // A feasible problem sails through the same gate.
  const auto feasible = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  EXPECT_LE(estimated_utilization(*feasible), 1.0);
  const auto ok_id = service.submit(job_for(feasible));
  ASSERT_TRUE(ok_id.ok());
  EXPECT_TRUE(service.wait(*ok_id).ok());
}

TEST(Service, DeadlineReturnsVerifiablePartialResult) {
  const auto p = slow_problem();
  RoutingService service;
  JobRequest request = job_for(p);
  request.budget.wall_ms = 5;  // far below this instance's full runtime
  const auto outcome = service.wait(*service.submit(std::move(request)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCompleted);  // deadline != cancel
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_FALSE(outcome->result->failed.empty());
  // The routed subset of a budget-stopped run still verifies.
  EXPECT_TRUE(verify(*p, outcome->result->grid).drc_clean());
}

TEST(Service, CancelQueuedJobNeverRuns) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.start_paused = true;
  RoutingService service(options);

  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.cancel(*id));
  EXPECT_FALSE(service.cancel(*id));  // already terminal

  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCancelled);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(outcome->result, nullptr);  // never ran
  EXPECT_EQ(service.stats().cancelled, 1);
  EXPECT_EQ(service.stats().started, 0);
}

TEST(Service, CancelRunningJobStopsWithPartialResult) {
  const auto p = slow_problem();
  RoutingService service;
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());

  // Wait until the worker has actually started the job, then cancel.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().started == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.stats().started, 1);
  service.cancel(*id);

  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  // The instance is infeasible and long-running, so the cancel lands well
  // before the run would end on its own.
  ASSERT_EQ(outcome->state, JobState::kCancelled);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kCancelled);
  ASSERT_NE(outcome->result, nullptr);  // partial result attached
  EXPECT_TRUE(verify(*p, outcome->result->grid).drc_clean());
}

TEST(Service, ShutdownCancelsQueuedJobsAndRejectsNewOnes) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.start_paused = true;
  RoutingService service(options);
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());

  service.shutdown();
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCancelled);

  const auto late = service.submit(job_for(p));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), ErrorCode::kCancelled);

  service.shutdown();  // idempotent
}

TEST(Service, WaitConsumesTheRecord) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  RoutingService service;
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.wait(*id).ok());
  const auto again = service.wait(*id);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kValidation);
}

TEST(Service, TryOutcomePeeksWithoutConsuming) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.start_paused = true;
  RoutingService service(options);
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(service.try_outcome(*id).has_value());  // still queued

  service.resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::optional<JobOutcome> peeked;
  while (!(peeked = service.try_outcome(*id)).has_value() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->state, JobState::kCompleted);
  EXPECT_TRUE(service.wait(*id).ok());  // record still there
}

TEST(Service, LifecycleEventsFlowThroughTrace) {
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  obs::CountingSink sink;
  ServiceOptions options;
  options.trace = &sink;
  RoutingService service(options);

  ASSERT_TRUE(service.wait(*service.submit(job_for(p))).ok());
  ASSERT_TRUE(service.wait(*service.submit(job_for(p))).ok());  // cached

  EXPECT_EQ(sink.count(obs::EventKind::kJobSubmitted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobAdmitted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobStarted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobCachedHit), 1);
  EXPECT_EQ(sink.count(obs::EventKind::kJobCompleted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobRejected), 0);

  service.shutdown();
  const auto late = service.submit(job_for(p));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(sink.count(obs::EventKind::kJobRejected), 1);
}

TEST(Service, NullProblemIsValidationError) {
  RoutingService service;
  const auto id = service.submit(JobRequest{});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), ErrorCode::kValidation);
}

TEST(EstimatedUtilization, OrdersFeasibleAndInfeasible) {
  EXPECT_LE(estimated_utilization(suite::cross_switchbox().to_problem()),
            1.0);
  Problem over{Region(2, 2)};
  for (int i = 0; i < 6; ++i) {
    const NetId id = over.add_net("n" + std::to_string(i));
    over.net(id).pins = {{{0, 0}, Layer::kMetal1, false},
                         {{1, 1}, Layer::kMetal1, false}};
  }
  EXPECT_GT(estimated_utilization(over), 1.0);
  EXPECT_EQ(estimated_utilization(Problem{Region(4, 4)}), 0.0);
}

}  // namespace
}  // namespace gridroute::service
