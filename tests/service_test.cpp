// RoutingService tests: the serving layer's determinism contract (results
// bit-identical to direct route(RouteRequest), fresh or cached), admission
// control, deadlines/cancellation, and the job lifecycle event stream.
// scripts/tier1.sh re-runs this binary under ThreadSanitizer.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "fault/fault.hpp"
#include "io/solution_format.hpp"
#include "obs/sinks.hpp"
#include "service/routing_service.hpp"
#include "verify/verify.hpp"

namespace gridroute::service {
namespace {

/// Everything decision-relevant a result carries, rendered to one string:
/// the exact layout, the failure list, and the deterministic counters
/// (wall-clock fields deliberately excluded). Two runs are "bit-identical"
/// iff these strings match.
std::string artifact(const Problem& p, const RouteResult& r) {
  std::ostringstream out;
  out << solution_to_string(p, r.grid);
  out << "failed:";
  for (NetId id : r.failed) out << ' ' << id;
  const RouteStats& s = r.stats;
  out << "\nstats: " << s.nets_attempted << ' ' << s.nets_routed << ' '
      << s.connections_attempted << ' ' << s.connections_routed << ' '
      << s.weak_modifications << ' ' << s.weak_attempts << ' '
      << s.strong_ripups << ' ' << s.expansions;
  out << "\nwinner: " << r.winning_attempt << ' ' << r.winning_seed << ' '
      << r.total_expansions;
  return std::move(out).str();
}

RouteResult direct_route(const Problem& p, int extra_attempts = 0) {
  RouteRequest request;
  request.problem = &p;
  request.extra_attempts = extra_attempts;
  return route(request);
}

JobRequest job_for(const std::shared_ptr<const Problem>& p,
                   int extra_attempts = 0) {
  JobRequest request;
  request.problem = p;
  request.extra_attempts = extra_attempts;
  return request;
}

/// A problem saturated enough that no run ever completes — and large
/// enough that a run takes real time, which the deadline and cancellation
/// tests rely on.
std::shared_ptr<const Problem> slow_problem() {
  const ChannelSpec spec = suite::deutsch_class_channel(1976, 174, 19);
  return std::make_shared<const Problem>(
      spec.to_problem(spec.density() - 1));  // one track short: infeasible
}

TEST(Service, SingleJobMatchesDirectRoute) {
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  const RouteResult baseline = direct_route(*p);

  RoutingService service;
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok()) << outcome.status().to_string();
  EXPECT_EQ(outcome->state, JobState::kCompleted);
  EXPECT_TRUE(outcome->status.ok());
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_EQ(artifact(*p, *outcome->result), artifact(*p, baseline));
}

TEST(Service, MultiStartJobMatchesDirectRoute) {
  const auto p = std::make_shared<const Problem>(
      suite::overfilled_switchbox().to_problem());
  const RouteResult baseline = direct_route(*p, 3);

  RoutingService service;
  const auto id = service.submit(job_for(p, 3));
  ASSERT_TRUE(id.ok());
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_EQ(artifact(*p, *outcome->result), artifact(*p, baseline));
}

TEST(Service, ConcurrentClientsBitIdenticalToSerial) {
  // N client threads x M jobs over a pool of distinct problems, against a
  // multi-worker service. Every delivered result — fresh or cached — must
  // equal the serial route(RouteRequest) baseline of its problem.
  std::vector<std::shared_ptr<const Problem>> problems;
  problems.push_back(std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem()));
  problems.push_back(std::make_shared<const Problem>(
      suite::burstein_class_switchbox(31).to_problem()));
  problems.push_back(std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem()));
  problems.push_back(
      std::make_shared<const Problem>(suite::macrocell_region(7)));

  std::vector<std::string> baselines;
  baselines.reserve(problems.size());
  for (const auto& p : problems)
    baselines.push_back(artifact(*p, direct_route(*p)));

  ServiceOptions options;
  options.workers = 4;
  options.max_queue_depth = 256;
  RoutingService service(options);

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 3;
  std::vector<int> mismatches(kClients, -1);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      int bad = 0;
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::size_t which =
            static_cast<std::size_t>(c + j) % problems.size();
        JobRequest request = job_for(problems[which]);
        // Odd jobs bypass the cache so fresh execution stays exercised
        // even once every problem has a cached result.
        request.use_cache = (j % 2) == 0;
        const auto id = service.submit(std::move(request));
        if (!id.ok()) {
          ++bad;
          continue;
        }
        const auto outcome = service.wait(*id);
        if (!outcome.ok() || outcome->state != JobState::kCompleted ||
            outcome->result == nullptr ||
            artifact(*problems[which], *outcome->result) != baselines[which])
          ++bad;
      }
      mismatches[static_cast<std::size_t>(c)] = bad;
    });
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(mismatches[static_cast<std::size_t>(c)], 0) << "client " << c;

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kJobsPerClient);
  EXPECT_EQ(stats.admitted, kClients * kJobsPerClient);
  EXPECT_EQ(stats.completed, kClients * kJobsPerClient);
}

TEST(Service, CacheHitIsBitIdenticalAndMarked) {
  const auto p = std::make_shared<const Problem>(
      suite::burstein_class_switchbox(31).to_problem());
  RoutingService service;

  const auto first = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);

  const auto second = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  ASSERT_NE(second->result, nullptr);
  EXPECT_EQ(artifact(*p, *second->result), artifact(*p, *first->result));
  EXPECT_EQ(service.stats().cache_hits, 1);
}

TEST(Service, NetOrderTwinsShareAHashButNotResults) {
  // Two spellings of "the same" problem with nets declared in opposite
  // order: canonical_hash treats them as equal, but NetIds (and therefore
  // routed layouts) differ — the cache's exact-identity confirm must keep
  // them apart, and each must still match its own direct baseline.
  Problem forward{Region(10, 8)};
  {
    const NetId a = forward.add_net("alpha");
    forward.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                           {{9, 6}, Layer::kMetal1, false}};
    const NetId b = forward.add_net("beta");
    forward.net(b).pins = {{{0, 6}, Layer::kMetal1, false},
                           {{9, 1}, Layer::kMetal1, false}};
  }
  Problem reversed{Region(10, 8)};
  {
    const NetId b = reversed.add_net("beta");
    reversed.net(b).pins = {{{0, 6}, Layer::kMetal1, false},
                            {{9, 1}, Layer::kMetal1, false}};
    const NetId a = reversed.add_net("alpha");
    reversed.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                            {{9, 6}, Layer::kMetal1, false}};
  }
  ASSERT_EQ(forward.canonical_hash(), reversed.canonical_hash());

  const auto pf = std::make_shared<const Problem>(forward);
  const auto pr = std::make_shared<const Problem>(reversed);
  RoutingService service;
  const auto first = service.wait(*service.submit(job_for(pf)));
  const auto second = service.wait(*service.submit(job_for(pr)));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);  // a hash hit must not certify identity
  EXPECT_EQ(artifact(*pf, *first->result), artifact(*pf, direct_route(*pf)));
  EXPECT_EQ(artifact(*pr, *second->result), artifact(*pr, direct_route(*pr)));
}

TEST(Service, BudgetedRunsAreNotCached) {
  // A budgeted run's outcome is not a pure function of (problem, options),
  // so it must neither come from nor land in the cache.
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  RoutingService service;

  JobRequest budgeted = job_for(p);
  budgeted.budget.max_expansions = 1000000;
  const auto first = service.wait(*service.submit(std::move(budgeted)));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);

  JobRequest again = job_for(p);
  again.budget.max_expansions = 1000000;
  const auto second = service.wait(*service.submit(std::move(again)));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  EXPECT_EQ(service.stats().cache_hits, 0);
}

TEST(Service, QueueDepthBoundRejects) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.workers = 1;
  options.max_queue_depth = 2;
  options.start_paused = true;  // keep both jobs queued deterministically
  RoutingService service(options);

  const auto first = service.submit(job_for(p));
  const auto second = service.submit(job_for(p));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  const auto third = service.submit(job_for(p));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), ErrorCode::kResource);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1);
  EXPECT_EQ(stats.queue_depth, 2);
  EXPECT_EQ(stats.peak_queue_depth, 2);

  service.resume();
  EXPECT_TRUE(service.wait(*first).ok());
  EXPECT_TRUE(service.wait(*second).ok());
}

TEST(Service, PrescreenRejectsProvablyInfeasible) {
  // 10 corner-to-corner nets on a 3x3 region: HPWL demand 50 against 18
  // routable nodes. Utilization > 1 proves infeasibility before routing.
  auto infeasible = std::make_shared<Problem>(Region(3, 3));
  for (int i = 0; i < 10; ++i) {
    const NetId id = infeasible->add_net("n" + std::to_string(i));
    infeasible->net(id).pins = {{{0, 0}, Layer::kMetal1, false},
                                {{2, 2}, Layer::kMetal1, false}};
  }
  EXPECT_GT(estimated_utilization(*infeasible), 1.0);

  ServiceOptions options;
  options.prescreen = true;
  RoutingService service(options);
  const auto id = service.submit(
      job_for(std::shared_ptr<const Problem>(infeasible)));
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), ErrorCode::kResource);
  EXPECT_EQ(service.stats().rejected_prescreen, 1);

  // A feasible problem sails through the same gate.
  const auto feasible = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  EXPECT_LE(estimated_utilization(*feasible), 1.0);
  const auto ok_id = service.submit(job_for(feasible));
  ASSERT_TRUE(ok_id.ok());
  EXPECT_TRUE(service.wait(*ok_id).ok());
}

TEST(Service, DeadlineReturnsVerifiablePartialResult) {
  const auto p = slow_problem();
  RoutingService service;
  JobRequest request = job_for(p);
  request.budget.wall_ms = 5;  // far below this instance's full runtime
  const auto outcome = service.wait(*service.submit(std::move(request)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCompleted);  // deadline != cancel
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_FALSE(outcome->result->failed.empty());
  // The routed subset of a budget-stopped run still verifies.
  EXPECT_TRUE(verify(*p, outcome->result->grid).drc_clean());
}

TEST(Service, CancelQueuedJobNeverRuns) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.start_paused = true;
  RoutingService service(options);

  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(service.cancel(*id));
  EXPECT_FALSE(service.cancel(*id));  // already terminal

  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCancelled);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kCancelled);
  EXPECT_EQ(outcome->result, nullptr);  // never ran
  EXPECT_EQ(service.stats().cancelled, 1);
  EXPECT_EQ(service.stats().started, 0);
}

TEST(Service, CancelRunningJobStopsWithPartialResult) {
  const auto p = slow_problem();
  RoutingService service;
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());

  // Wait until the worker has actually started the job, then cancel.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().started == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.stats().started, 1);
  service.cancel(*id);

  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  // The instance is infeasible and long-running, so the cancel lands well
  // before the run would end on its own.
  ASSERT_EQ(outcome->state, JobState::kCancelled);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kCancelled);
  ASSERT_NE(outcome->result, nullptr);  // partial result attached
  EXPECT_TRUE(verify(*p, outcome->result->grid).drc_clean());
}

TEST(Service, ShutdownCancelsQueuedJobsAndRejectsNewOnes) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.start_paused = true;
  RoutingService service(options);
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());

  service.shutdown();
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCancelled);

  const auto late = service.submit(job_for(p));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), ErrorCode::kCancelled);

  service.shutdown();  // idempotent
}

TEST(Service, WaitConsumesTheRecord) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  RoutingService service;
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.wait(*id).ok());
  const auto again = service.wait(*id);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), ErrorCode::kValidation);
}

TEST(Service, TryOutcomePeeksWithoutConsuming) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.start_paused = true;
  RoutingService service(options);
  const auto id = service.submit(job_for(p));
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(service.try_outcome(*id).has_value());  // still queued

  service.resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::optional<JobOutcome> peeked;
  while (!(peeked = service.try_outcome(*id)).has_value() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(peeked->state, JobState::kCompleted);
  EXPECT_TRUE(service.wait(*id).ok());  // record still there
}

TEST(Service, LifecycleEventsFlowThroughTrace) {
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  obs::CountingSink sink;
  ServiceOptions options;
  options.trace = &sink;
  RoutingService service(options);

  ASSERT_TRUE(service.wait(*service.submit(job_for(p))).ok());
  ASSERT_TRUE(service.wait(*service.submit(job_for(p))).ok());  // cached

  EXPECT_EQ(sink.count(obs::EventKind::kJobSubmitted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobAdmitted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobStarted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobCachedHit), 1);
  EXPECT_EQ(sink.count(obs::EventKind::kJobCompleted), 2);
  EXPECT_EQ(sink.count(obs::EventKind::kJobRejected), 0);

  service.shutdown();
  const auto late = service.submit(job_for(p));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(sink.count(obs::EventKind::kJobRejected), 1);
}

TEST(Service, NullProblemIsValidationError) {
  RoutingService service;
  const auto id = service.submit(JobRequest{});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), ErrorCode::kValidation);
}

TEST(EstimatedUtilization, OrdersFeasibleAndInfeasible) {
  EXPECT_LE(estimated_utilization(suite::cross_switchbox().to_problem()),
            1.0);
  Problem over{Region(2, 2)};
  for (int i = 0; i < 6; ++i) {
    const NetId id = over.add_net("n" + std::to_string(i));
    over.net(id).pins = {{{0, 0}, Layer::kMetal1, false},
                         {{1, 1}, Layer::kMetal1, false}};
  }
  EXPECT_GT(estimated_utilization(over), 1.0);
  EXPECT_EQ(estimated_utilization(Problem{Region(4, 4)}), 0.0);
}

// ---------------------------------------------------------------------------
// Incremental/ECO sessions (DESIGN.md §2.4)
// ---------------------------------------------------------------------------

/// A small always-routable region problem for session tests.
std::shared_ptr<const Problem> session_problem(std::uint64_t seed = 11,
                                               int nets = 6) {
  return std::make_shared<const Problem>(
      suite::random_switchbox(seed, 12, 9, nets).to_problem());
}

TEST(ServiceSession, OpenSubmitDeltaCommitAdvancesLayout) {
  const auto p = session_problem();
  RoutingService service;
  const auto ticket = service.open_session(job_for(p));
  ASSERT_TRUE(ticket.ok()) << ticket.status().to_string();
  const auto base = service.wait(ticket->base_job);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->state, JobState::kCompleted);

  auto info = service.session_info(ticket->session);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->busy);
  EXPECT_EQ(info->committed_deltas, 0);
  ASSERT_NE(info->layout, nullptr);
  EXPECT_EQ(info->layout.get(), base->result.get());

  // Move one pin of net 0 to a free interior cell.
  DeltaJobRequest delta;
  delta.edit.move_pins.push_back({0, 0, {5, 4}});
  const auto id = service.submit_delta(ticket->session, delta);
  ASSERT_TRUE(id.ok()) << id.status().to_string();
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->state, JobState::kCompleted);
  ASSERT_NE(outcome->delta, nullptr);
  EXPECT_FALSE(outcome->from_cache);

  // The equivalence contract holds against the session's base layout.
  EXPECT_TRUE(verify_delta_equivalence(*outcome->problem,
                                       outcome->result->grid,
                                       base->result->grid,
                                       outcome->delta->preserved)
                  .equivalent());

  // The session advanced: committed layout is now the delta result.
  info = service.session_info(ticket->session);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->committed_deltas, 1);
  EXPECT_EQ(info->layout.get(), outcome->result.get());
  EXPECT_EQ(info->problem.get(), outcome->problem.get());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sessions_opened, 1);
  EXPECT_EQ(stats.deltas_submitted, 1);
  EXPECT_EQ(stats.deltas_committed, 1);
  EXPECT_TRUE(service.close_session(ticket->session));
}

TEST(ServiceSession, TwoSessionsDoNotCrossContaminate) {
  // Two clients on different problems, deltas interleaved: each session's
  // committed state must track its own lineage only.
  const auto pa = session_problem(21, 6);
  const auto pb = session_problem(22, 7);
  ServiceOptions options;
  options.workers = 2;
  RoutingService service(options);

  const auto ta = service.open_session(job_for(pa));
  const auto tb = service.open_session(job_for(pb));
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  const auto base_a = service.wait(ta->base_job);
  const auto base_b = service.wait(tb->base_job);
  ASSERT_TRUE(base_a.ok());
  ASSERT_TRUE(base_b.ok());
  ASSERT_EQ(base_a->state, JobState::kCompleted);
  ASSERT_EQ(base_b->state, JobState::kCompleted);

  DeltaJobRequest da;
  da.edit.remove_nets.push_back(0);
  DeltaJobRequest db;
  db.edit.add_obstacles.push_back({{{6, 4}, {6, 4}}, Layer::kMetal1, true});
  const auto ja = service.submit_delta(ta->session, da);
  const auto jb = service.submit_delta(tb->session, db);
  ASSERT_TRUE(ja.ok());
  ASSERT_TRUE(jb.ok());
  const auto oa = service.wait(*ja);
  const auto ob = service.wait(*jb);
  ASSERT_TRUE(oa.ok());
  ASSERT_TRUE(ob.ok());
  ASSERT_EQ(oa->state, JobState::kCompleted);
  ASSERT_EQ(ob->state, JobState::kCompleted);

  // Each delta answers to its own base: preserved nets byte-identical to
  // the session's own committed layout.
  EXPECT_TRUE(verify_delta_equivalence(*oa->problem, oa->result->grid,
                                       base_a->result->grid,
                                       oa->delta->preserved)
                  .equivalent());
  EXPECT_TRUE(verify_delta_equivalence(*ob->problem, ob->result->grid,
                                       base_b->result->grid,
                                       ob->delta->preserved)
                  .equivalent());

  // Session snapshots stayed independent: a's problem kept b's edit out
  // and vice versa (a removed net 0; b gained an obstacle, kept its nets).
  const auto ia = service.session_info(ta->session);
  const auto ib = service.session_info(tb->session);
  ASSERT_TRUE(ia.has_value());
  ASSERT_TRUE(ib.has_value());
  EXPECT_NE(ia->problem.get(), ib->problem.get());
  EXPECT_TRUE(ia->problem->net(0).pins.empty());       // tombstoned in a
  EXPECT_FALSE(ib->problem->net(0).pins.empty());      // intact in b
  EXPECT_EQ(ia->committed_deltas, 1);
  EXPECT_EQ(ib->committed_deltas, 1);
  EXPECT_EQ(service.stats().sessions_opened, 2);
}

TEST(ServiceSession, CancelMidDeltaLeavesBaseLayoutCommitted) {
  // Base: the slow instance under a tight deterministic expansion budget,
  // so it terminates quickly with a clean partial layout the session
  // commits. The delta then re-routes the (infeasible, long-running)
  // remainder unbudgeted — cancelled mid-flight.
  const auto p = slow_problem();
  JobRequest base_request = job_for(p);
  base_request.budget.max_expansions = 2000;
  RoutingService service;
  const auto ticket = service.open_session(base_request);
  ASSERT_TRUE(ticket.ok());
  const auto base = service.wait(ticket->base_job);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->state, JobState::kCompleted);
  ASSERT_TRUE(base->result->status.ok());

  DeltaJobRequest delta;  // unlimited budget
  // The instance is provably infeasible, so the pre-screen would settle it
  // instantly; switch it off to get a genuinely long-running re-route.
  delta.prescreen = false;
  // Row 0 of a channel problem carries pins; row 1 is a routing track.
  delta.edit.add_obstacles.push_back({{{0, 1}, {0, 1}}, Layer::kMetal1, true});
  const auto id = service.submit_delta(ticket->session, delta);
  ASSERT_TRUE(id.ok()) << id.status().to_string();

  // Session is busy while the delta is in flight: a second delta bounces.
  EXPECT_EQ(service.submit_delta(ticket->session, delta).status().code(),
            ErrorCode::kResource);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().started < 2 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.stats().started, 2);
  service.cancel(*id);

  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->state, JobState::kCancelled);
  ASSERT_NE(outcome->result, nullptr);  // verifiable partial
  EXPECT_TRUE(verify(*outcome->problem, outcome->result->grid).drc_clean());

  // The cancelled delta must not have advanced the session: the committed
  // layout is still the base result, and the session is free again.
  const auto info = service.session_info(ticket->session);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->busy);
  EXPECT_EQ(info->committed_deltas, 0);
  EXPECT_EQ(info->layout.get(), base->result.get());
  EXPECT_EQ(service.stats().deltas_committed, 0);
}

TEST(ServiceSession, DeltaJobsNeverServedFromCache) {
  // Prime the whole-problem LRU with the exact problem an empty delta
  // re-produces. A cache key that ignored the session's committed layout
  // would serve the delta from it; the contract is that delta jobs bypass
  // the cache entirely.
  const auto p = session_problem(33, 6);
  RoutingService service;
  const auto warmup = service.submit(job_for(p));
  ASSERT_TRUE(warmup.ok());
  ASSERT_TRUE(service.wait(*warmup).ok());

  const auto ticket = service.open_session(job_for(p));
  ASSERT_TRUE(ticket.ok());
  const auto base = service.wait(ticket->base_job);
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(base->from_cache);  // same problem: the base may cache-hit
  const long long hits_before = service.stats().cache_hits;

  DeltaJobRequest delta;  // empty edit: edited problem == base problem
  const auto id = service.submit_delta(ticket->session, delta);
  ASSERT_TRUE(id.ok());
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->state, JobState::kCompleted);
  EXPECT_FALSE(outcome->from_cache);
  EXPECT_EQ(service.stats().cache_hits, hits_before);
  // Content-wise the edited problem equals the cached one — which is
  // exactly why a naive cache key would have matched.
  EXPECT_EQ(outcome->problem->canonical_hash(), p->canonical_hash());
}

TEST(ServiceSession, SessionAdmissionErrors) {
  const auto p = session_problem(44, 5);
  RoutingService service;

  DeltaJobRequest delta;
  delta.edit.remove_nets.push_back(0);
  // Unknown session.
  EXPECT_EQ(service.submit_delta(77, delta).status().code(),
            ErrorCode::kValidation);
  EXPECT_FALSE(service.close_session(77));
  EXPECT_FALSE(service.session_info(77).has_value());

  const auto ticket = service.open_session(job_for(p));
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(service.wait(ticket->base_job).ok());

  // Closing consumes the session; later deltas bounce.
  EXPECT_TRUE(service.close_session(ticket->session));
  EXPECT_EQ(service.submit_delta(ticket->session, delta).status().code(),
            ErrorCode::kValidation);
}

// ---------------------------------------------------------------------------
// Resilience: supervision, retry/quarantine, watchdog, brown-out
// (DESIGN.md §2.5). The chaos harness (chaos_test.cpp) storms every fault
// site; these tests pin the individual mechanisms deterministically.
// ---------------------------------------------------------------------------

/// Polls health() until the worker pool is whole and idle (the supervisor
/// respawns seats asynchronously) or the deadline passes.
ServiceHealth settled_health(const RoutingService& service, int workers) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  ServiceHealth health = service.health();
  while ((health.workers_alive != workers || health.running_jobs != 0) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    health = service.health();
  }
  return health;
}

TEST(ServiceResilience, WorkerKillIsRetriedAndCompletesIdentically) {
  // A worker-body escape kills the worker; the supervision layer must
  // absorb it (typed, no waiter hang), re-queue the job, respawn the seat
  // — and the retried run must still be bit-identical to a direct route.
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  const RouteResult baseline = direct_route(*p);

  fault::Injector injector =
      fault::Injector::at(fault::Site::kWorkerBody, 1);
  obs::CountingSink sink;
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 1;
  options.faults = &injector;
  options.trace = &sink;
  RoutingService service(options);

  const auto outcome = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(outcome->state, JobState::kCompleted);
  EXPECT_EQ(outcome->retries, 1);
  ASSERT_EQ(outcome->fault_history.size(), 1u);
  EXPECT_NE(outcome->fault_history[0].find("worker_body"), std::string::npos);
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_EQ(artifact(*p, *outcome->result), artifact(*p, baseline));

  const ServiceHealth health = settled_health(service, 1);
  EXPECT_EQ(health.workers_alive, 1);
  EXPECT_GE(health.workers_respawned, 1);
  EXPECT_EQ(health.jobs_retried, 1);
  EXPECT_EQ(health.jobs_quarantined, 0);
  EXPECT_GE(sink.count(obs::EventKind::kWorkerDied), 1);
  EXPECT_GE(sink.count(obs::EventKind::kWorkerRespawned), 1);
  EXPECT_EQ(sink.count(obs::EventKind::kJobRetried), 1);
}

TEST(ServiceResilience, WorkerKillQuarantinesWhenRetriesExhausted) {
  const auto p = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  fault::Injector injector =
      fault::Injector::at(fault::Site::kWorkerBody, 1);
  obs::CountingSink sink;
  ServiceOptions options;
  options.workers = 1;
  options.max_retries = 0;  // first failure is terminal
  options.faults = &injector;
  options.trace = &sink;
  RoutingService service(options);

  const auto outcome = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kFailed);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kInternal);
  EXPECT_EQ(outcome->result, nullptr);
  EXPECT_EQ(outcome->retries, 0);
  ASSERT_EQ(outcome->fault_history.size(), 1u);
  EXPECT_EQ(sink.count(obs::EventKind::kJobQuarantined), 1);
  EXPECT_EQ(service.stats().failed, 1);
  EXPECT_EQ(settled_health(service, 1).jobs_quarantined, 1);

  // A quarantined job never lands in the cache: the same problem resubmitted
  // (injector spent) routes fresh and completes.
  const auto clean = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->state, JobState::kCompleted);
  EXPECT_FALSE(clean->from_cache);
  EXPECT_EQ(artifact(*p, *clean->result), artifact(*p, direct_route(*p)));
}

TEST(ServiceResilience, DefaultWallDeadlineYieldsVerifiablePartial) {
  // A service-wide wall deadline rides every job whose client set none:
  // the unbudgeted slow instance terminates with a clean partial instead
  // of holding a worker forever — and the partial never enters the cache.
  const auto p = slow_problem();
  ServiceOptions options;
  options.default_max_wall_ms = 5;
  RoutingService service(options);

  const auto outcome = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kCompleted);  // deadline != cancel
  ASSERT_NE(outcome->result, nullptr);
  EXPECT_FALSE(outcome->result->failed.empty());
  EXPECT_TRUE(verify(*p, outcome->result->grid).drc_clean());

  const auto second = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  EXPECT_EQ(service.stats().cache_hits, 0);
}

TEST(ServiceResilience, BrownOutTightensInsteadOfRejecting) {
  // Five unique jobs against workers=1, threshold=3, admitted while
  // paused: depths 1..5, so job 3 trips brown-out (the tripping job is
  // itself browned) and jobs 4-5 ride it. Nothing is rejected; browned
  // jobs complete with a kBrownOut degradation and stay out of the cache.
  std::vector<std::shared_ptr<const Problem>> problems;
  for (std::uint64_t s = 0; s < 5; ++s)
    problems.push_back(std::make_shared<const Problem>(
        suite::random_switchbox(60 + s, 12, 9, 5).to_problem()));

  obs::CountingSink sink;
  ServiceOptions options;
  options.workers = 1;
  options.start_paused = true;
  options.max_queue_depth = 16;
  options.brownout_queue_threshold = 3;
  options.brownout_max_expansions = 200000;
  options.trace = &sink;
  RoutingService service(options);

  std::vector<std::uint64_t> ids;
  for (const auto& p : problems) {
    const auto id = service.submit(job_for(p));
    ASSERT_TRUE(id.ok()) << id.status().to_string();  // shed, not rejected
    ids.push_back(*id);
  }
  EXPECT_EQ(sink.count(obs::EventKind::kBrownOutEntered), 1);
  service.resume();

  int browned = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto outcome = service.wait(ids[i]);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->state, JobState::kCompleted) << "job " << i;
    ASSERT_NE(outcome->result, nullptr);
    bool has_brownout_mark = false;
    for (const Degradation& d : outcome->result->degradation)
      has_brownout_mark |= d.kind == Degradation::Kind::kBrownOut;
    EXPECT_EQ(has_brownout_mark, i >= 2) << "job " << i;
    browned += has_brownout_mark ? 1 : 0;
    EXPECT_TRUE(verify(*problems[i], outcome->result->grid).drc_clean());
  }
  EXPECT_EQ(browned, 3);
  EXPECT_EQ(service.stats().browned_out, 3);
  EXPECT_EQ(service.stats().rejected_queue_full, 0);
  EXPECT_EQ(sink.count(obs::EventKind::kBrownOutExited), 1);

  const ServiceHealth health = settled_health(service, 1);
  EXPECT_FALSE(health.brownout_active);
  EXPECT_EQ(health.brownouts_entered, 1);

  // Browned results never entered the cache: the tripping problem
  // resubmitted under calm routes fresh.
  const auto calm = service.wait(*service.submit(job_for(problems[2])));
  ASSERT_TRUE(calm.ok());
  EXPECT_FALSE(calm->from_cache);
}

TEST(ServiceResilience, CacheInsertFaultIsAbsorbedAndNeverPoisons) {
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  fault::Injector injector =
      fault::Injector::at(fault::Site::kCacheInsert, 1);
  ServiceOptions options;
  options.faults = &injector;
  RoutingService service(options);

  // First run: the insert blows up after a clean route. The job still
  // completes; the failure is absorbed and counted.
  const auto first = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->state, JobState::kCompleted);
  EXPECT_TRUE(injector.fired());
  EXPECT_EQ(service.health().cache_insert_failures, 1);

  // Nothing was cached, so the second run routes fresh — and its insert
  // (injector spent) succeeds, so the third is a hit.
  const auto second = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->from_cache);
  const auto third = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->from_cache);
  EXPECT_EQ(artifact(*p, *third->result), artifact(*p, *first->result));
}

TEST(ServiceResilience, SessionCommitFaultKeepsPreviousLayout) {
  // Arrival 1 is the base commit, arrival 2 the delta commit: the delta
  // routes fine but its commit fails, so the waiter gets a typed internal
  // failure and the session still serves the base layout.
  const auto p = session_problem(55, 6);
  fault::Injector injector =
      fault::Injector::at(fault::Site::kSessionCommit, 2);
  ServiceOptions options;
  options.faults = &injector;
  RoutingService service(options);

  const auto ticket = service.open_session(job_for(p));
  ASSERT_TRUE(ticket.ok());
  const auto base = service.wait(ticket->base_job);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->state, JobState::kCompleted);

  DeltaJobRequest delta;
  delta.edit.move_pins.push_back({0, 0, {5, 4}});
  const auto id = service.submit_delta(ticket->session, delta);
  ASSERT_TRUE(id.ok());
  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kFailed);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kInternal);
  ASSERT_EQ(outcome->fault_history.size(), 1u);
  EXPECT_NE(outcome->fault_history[0].find("session_commit"),
            std::string::npos);

  // The session kept its previous committed state and is free again.
  const auto info = service.session_info(ticket->session);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->busy);
  EXPECT_EQ(info->committed_deltas, 0);
  EXPECT_EQ(info->layout.get(), base->result.get());

  // The same delta resubmitted (injector spent) commits.
  const auto retry_id = service.submit_delta(ticket->session, delta);
  ASSERT_TRUE(retry_id.ok());
  const auto retried = service.wait(*retry_id);
  ASSERT_TRUE(retried.ok());
  ASSERT_EQ(retried->state, JobState::kCompleted);
  EXPECT_EQ(service.session_info(ticket->session)->committed_deltas, 1);
}

TEST(ServiceResilience, ShutdownDeliversTerminalOutcomeToEveryWaiter) {
  // One budgeted job running plus five queued behind it, a blocked waiter
  // per job — shutdown() must hand every single waiter a typed terminal
  // outcome (running job finishes, queued jobs cancel). No waiter hangs.
  const auto slow = slow_problem();
  const auto quick = std::make_shared<const Problem>(
      suite::cross_switchbox().to_problem());
  ServiceOptions options;
  options.workers = 1;
  RoutingService service(options);

  std::vector<std::uint64_t> ids;
  JobRequest running = job_for(slow);
  running.budget.max_expansions = 200000;  // self-terminates, but not instantly
  const auto first = service.submit(std::move(running));
  ASSERT_TRUE(first.ok());
  ids.push_back(*first);
  const auto started_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.stats().started == 0 &&
         std::chrono::steady_clock::now() < started_by)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.stats().started, 1);

  for (int i = 0; i < 5; ++i) {
    const auto id = service.submit(job_for(quick));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::vector<int> verdicts(ids.size(), -1);  // -1 lost, 0 non-terminal, 1 ok
  std::vector<std::thread> waiters;
  waiters.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    waiters.emplace_back([&, i] {
      const auto outcome = service.wait(ids[i]);
      if (!outcome.ok()) return;
      verdicts[i] = outcome->state == JobState::kCompleted ||
                            outcome->state == JobState::kCancelled ||
                            outcome->state == JobState::kFailed
                        ? 1
                        : 0;
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.shutdown();
  for (std::thread& t : waiters) t.join();
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    EXPECT_EQ(verdicts[i], 1) << "waiter " << i;
}

/// Per-job routing sink that parks the worker thread on its first event
/// until open() — a stand-in for a worker wedged somewhere that never
/// checks the cancel token.
class GateSink : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent&) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }
  void open() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ServiceResilience, WatchdogAbandonsWorkerThatIgnoresCancel) {
  // A worker parked inside the job's own trace sink never reaches a budget
  // checkpoint, so the watchdog's cancel is ignored. Escalation must kick
  // in: the job is finalized kFailed (the waiter unblocks *now*, not when
  // the thread deigns to return) and the seat is replaced.
  GateSink gate;  // outlives the service: the zombie thread still holds it
  const auto p = std::make_shared<const Problem>(
      suite::dense_switchbox().to_problem());
  obs::CountingSink sink;
  ServiceOptions options;
  options.workers = 1;
  options.watchdog_cancel_grace_ms = 10;
  options.watchdog_replace_grace_ms = 50;
  options.watchdog_poll_ms = 5;
  options.trace = &sink;
  RoutingService service(options);

  JobRequest request = job_for(p);
  request.budget.wall_ms = 20;
  request.trace = &gate;
  const auto id = service.submit(std::move(request));
  ASSERT_TRUE(id.ok());

  const auto outcome = service.wait(*id);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->state, JobState::kFailed);
  EXPECT_EQ(outcome->status.code(), ErrorCode::kInternal);
  ASSERT_FALSE(outcome->fault_history.empty());
  EXPECT_NE(outcome->fault_history.back().find("watchdog"),
            std::string::npos);

  const ServiceHealth health = settled_health(service, 1);
  EXPECT_EQ(health.workers_alive, 1);  // replacement seated
  EXPECT_EQ(health.workers_abandoned, 1);
  EXPECT_GE(health.watchdog_cancels, 1);
  EXPECT_GE(sink.count(obs::EventKind::kWorkerDied), 1);
  EXPECT_GE(sink.count(obs::EventKind::kWorkerRespawned), 1);

  // The replacement worker serves new jobs while the zombie is parked.
  const auto clean = service.wait(*service.submit(job_for(p)));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->state, JobState::kCompleted);

  // Release the wedged thread; shutdown() joins it (documented contract).
  gate.open();
  service.shutdown();
}

TEST(ServiceResilience, HealthSnapshotReflectsQuietPool) {
  ServiceOptions options;
  options.workers = 3;
  RoutingService service(options);
  const ServiceHealth health = service.health();
  EXPECT_EQ(health.workers_alive, 3);
  EXPECT_EQ(health.workers_respawned, 0);
  EXPECT_EQ(health.workers_abandoned, 0);
  EXPECT_EQ(health.queue_depth, 0);
  EXPECT_EQ(health.running_jobs, 0);
  EXPECT_EQ(health.jobs_retried, 0);
  EXPECT_EQ(health.jobs_quarantined, 0);
  EXPECT_FALSE(health.brownout_active);
  EXPECT_EQ(health.brownouts_entered, 0);
  EXPECT_EQ(health.watchdog_cancels, 0);
  EXPECT_EQ(health.cache_insert_failures, 0);
}

}  // namespace
}  // namespace gridroute::service
