// Property tests for the goal-oriented future costs (DESIGN.md §2.1g):
// the residual maze-search bound and the global router's congestion
// lower-bound grid. Admissibility is checked against ground truth (plain
// Dijkstra over the same cost surface); consistency analytically, move by
// move, since it is a local 1-Lipschitz property.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "bench_suite/query_batch.hpp"
#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "global/global_router.hpp"
#include "maze/maze_router.hpp"
#include "search/future_cost.hpp"
#include "util/rng.hpp"

namespace gridroute {
namespace {

using search::CutLowerBounds;
using search::ResidualFutureCost;

ResidualFutureCost make_bound(const CostModel& m, Rect box) {
  return ResidualFutureCost::classic(m.step, m.wrong_way, m.via, box);
}

ResidualFutureCost make_bbox(const CostModel& m, Rect box) {
  return ResidualFutureCost::classic(m.step, 0, 0, box);
}

// ---------------------------------------------------------------------------
// ResidualFutureCost — admissibility against ground truth
// ---------------------------------------------------------------------------

// h at the query's source must never exceed the true optimal cost the
// plain-Dijkstra reference computes over the same (routed, occupied) grid.
// Any over-estimate here would silently break cost-optimality of every
// A* mode, so this is fuzzed across instances, layers, and push modes.
TEST(ResidualFutureCost, AdmissibleAgainstDijkstraGroundTruth) {
  const std::vector<Problem> problems = {
      suite::burstein_class_switchbox(1983).to_problem(),
      suite::random_switchbox(11, 24, 18, 12, 3, 0.4).to_problem(),
      suite::macrocell_region(7),
  };
  const CostModel model;
  int checked = 0;
  for (const Problem& problem : problems) {
    IncrementalRouter routed(problem);
    routed.run();
    const PinBlocks pins(problem);
    WeightedMazeRouter reference(routed.grid(), pins, model);
    reference.set_future_cost(FutureCost::kNone);  // plain Dijkstra truth

    for (const SearchRequest& req :
         suite::make_query_batch(problem, 99, {.queries = 250})) {
      const SearchResult res = reference.route(req);
      if (!res.found) continue;
      Rect box{req.targets[0].pos, req.targets[0].pos};
      for (const GridPoint& t : req.targets)
        box = box.bounding_union({t.pos, t.pos});
      const ResidualFutureCost h = make_bound(model, box);
      EXPECT_LE(h.bound(req.sources[0].pos, req.sources[0].layer), res.cost)
          << "inadmissible at " << req.sources[0].pos;
      ++checked;
    }
  }
  EXPECT_GT(checked, 200);  // the fuzz actually exercised the property
}

// ---------------------------------------------------------------------------
// ResidualFutureCost — consistency, move by move
// ---------------------------------------------------------------------------

// h(s) <= c(s -> s') + h(s') for every move the weighted search can make.
// The *cheapest* cost of each move type bounds all dearer variants (bend
// and push surcharges only add), so checking against the cheapest is the
// strongest form. Fuzzed over positions, layers, and boxes.
TEST(ResidualFutureCost, ConsistentAcrossEveryMoveType) {
  const CostModel model;
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    const Rect box{{rng.next_int(0, 30), rng.next_int(0, 30)},
                   {rng.next_int(0, 30), rng.next_int(0, 30)}};
    if (!box.valid()) continue;
    const ResidualFutureCost h = make_bound(model, box);
    const Point p{rng.next_int(-5, 35), rng.next_int(-5, 35)};
    for (const Layer layer : {Layer::kMetal1, Layer::kMetal2}) {
      const std::int64_t here = h.bound(p, layer);
      // Planar steps: cheapest cost is step (+ wrong_way off the layer's
      // preferred axis).
      const Point steps[4] = {{p.x + 1, p.y}, {p.x - 1, p.y},
                              {p.x, p.y + 1}, {p.x, p.y - 1}};
      for (const Point q : steps) {
        const bool along_x = q.x != p.x;
        const bool preferred = (layer == Layer::kMetal1) == along_x;
        const std::int64_t edge =
            model.step + (preferred ? 0 : model.wrong_way);
        EXPECT_LE(here, edge + h.bound(q, layer))
            << p << " -> " << q << " layer " << static_cast<int>(layer);
      }
      // Via: position fixed, layer flips, cheapest cost is via.
      const Layer other =
          layer == Layer::kMetal1 ? Layer::kMetal2 : Layer::kMetal1;
      EXPECT_LE(here, model.via + h.bound(p, other));
    }
  }
}

TEST(ResidualFutureCost, ZeroResidualTermRecoversBboxManhattan) {
  const CostModel model;
  const Rect box{{4, 4}, {9, 6}};
  const ResidualFutureCost bbox = make_bbox(model, box);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.next_int(0, 14), rng.next_int(0, 14)};
    const int dx = std::max({box.lo.x - p.x, p.x - box.hi.x, 0});
    const int dy = std::max({box.lo.y - p.y, p.y - box.hi.y, 0});
    for (const Layer layer : {Layer::kMetal1, Layer::kMetal2})
      EXPECT_EQ(bbox.bound(p, layer), model.step * (dx + dy));
  }
}

TEST(ResidualFutureCost, SharperThanBboxNeverBelowIt) {
  const CostModel model;
  const Rect box{{10, 2}, {12, 3}};
  const ResidualFutureCost residual = make_bound(model, box);
  const ResidualFutureCost bbox = make_bbox(model, box);
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const Point p{rng.next_int(0, 20), rng.next_int(0, 20)};
    for (const Layer layer : {Layer::kMetal1, Layer::kMetal2}) {
      EXPECT_GE(residual.bound(p, layer), bbox.bound(p, layer));
      EXPECT_LE(residual.bound(p, layer),
                bbox.bound(p, layer) + std::min<std::int64_t>(
                    model.via, model.wrong_way * 33));
    }
  }
}

TEST(ResidualFutureCost, InvalidBoxDisablesTheBound) {
  const ResidualFutureCost h =
      ResidualFutureCost::classic(2, 1, 8, {{0, 0}, {-1, -1}});
  EXPECT_EQ(h.bound({5, 5}, Layer::kMetal1), 0);
}

// for_stack on the default (classic) stack must price identically to the
// scalar classic() configuration — the N=2 bit-identity guarantee of
// DESIGN.md §2.1h, checked at the heuristic level.
TEST(ResidualFutureCost, ForStackOnClassicMatchesClassicExactly) {
  const CostModel model;
  const LayerStack classic;
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const Rect box{{rng.next_int(0, 20), rng.next_int(0, 20)},
                   {rng.next_int(0, 20), rng.next_int(0, 20)}};
    if (!box.valid()) continue;
    const ResidualFutureCost a = make_bound(model, box);
    const ResidualFutureCost b = ResidualFutureCost::for_stack(
        classic, model.step, model.wrong_way, model.via, box);
    const Point p{rng.next_int(-4, 24), rng.next_int(-4, 24)};
    for (const Layer layer : {Layer::kMetal1, Layer::kMetal2})
      EXPECT_EQ(a.bound(p, layer), b.bound(p, layer));
  }
}

// On a taller stack the bound stays admissible & consistent: never negative,
// never above the bbox bound plus one cheapest via, 1-Lipschitz per step.
TEST(ResidualFutureCost, ForStackDirectedLayersSharpenButStayConsistent) {
  const LayerStack stack{{Axis::kHorizontal, /*directed=*/true},
                         {Axis::kVertical, /*directed=*/true},
                         {Axis::kHorizontal, /*directed=*/false},
                         {Axis::kVertical, /*directed=*/false}};
  const std::int64_t step = 2, wrong_way = 3, via = 8;
  const Rect box{{10, 10}, {12, 11}};
  const ResidualFutureCost h =
      ResidualFutureCost::for_stack(stack, step, wrong_way, via, box);
  Rng rng(78);
  for (int i = 0; i < 1000; ++i) {
    const Point p{rng.next_int(0, 22), rng.next_int(0, 22)};
    for (int k = 0; k < stack.count(); ++k) {
      const Layer layer = layer_at(k);
      const std::int64_t here = h.bound(p, layer);
      const int dx = std::max({box.lo.x - p.x, p.x - box.hi.x, 0});
      const int dy = std::max({box.lo.y - p.y, p.y - box.hi.y, 0});
      EXPECT_GE(here, step * (dx + dy));
      EXPECT_LE(here, step * (dx + dy) + via);  // residual capped by min via
      // Consistency across the via moves (cost via on every cut here).
      if (k > 0) {
        EXPECT_LE(here, via + h.bound(p, layer_at(k - 1)));
      }
      if (k + 1 < stack.count()) {
        EXPECT_LE(here, via + h.bound(p, layer_at(k + 1)));
      }
      // Consistency across preferred-axis steps (cost = step).
      const Point q = stack.horizontal(layer)
                          ? Point{p.x + (box.lo.x > p.x ? 1 : -1), p.y}
                          : Point{p.x, p.y + (box.lo.y > p.y ? 1 : -1)};
      EXPECT_LE(here, step + h.bound(q, layer));
    }
  }
}

// ---------------------------------------------------------------------------
// CutLowerBounds — unit behaviour
// ---------------------------------------------------------------------------

TEST(CutLowerBounds, SumsCutsStrictlyBetweenPointAndBox) {
  // 4 columns -> 3 x-cuts priced 5, 7, 11; single row, no y-cuts.
  const CutLowerBounds lb({0, 0}, {5, 7, 11}, {});
  const Rect box{{3, 0}, {3, 0}};
  EXPECT_EQ(lb.bound({0, 0}, box), 5 + 7 + 11);  // crosses all three
  EXPECT_EQ(lb.bound({1, 0}, box), 7 + 11);
  EXPECT_EQ(lb.bound({2, 0}, box), 11);
  EXPECT_EQ(lb.bound({3, 0}, box), 0);           // inside the box span
  // Approaching from the right of a left-edge box.
  const Rect left{{0, 0}, {0, 0}};
  EXPECT_EQ(lb.bound({3, 0}, left), 5 + 7 + 11);
  EXPECT_EQ(lb.bound({1, 0}, left), 5);
}

TEST(CutLowerBounds, TwoAxesAddIndependently) {
  const CutLowerBounds lb({0, 0}, {2, 2}, {3, 3});
  EXPECT_EQ(lb.bound({0, 0}, {{2, 2}, {2, 2}}), 2 + 2 + 3 + 3);
  EXPECT_EQ(lb.bound({2, 0}, {{2, 2}, {2, 2}}), 3 + 3);
  EXPECT_EQ(lb.bound({0, 2}, {{2, 2}, {2, 2}}), 2 + 2);
}

TEST(CutLowerBounds, CoordinatesClampToThePricedRange) {
  const CutLowerBounds lb({0, 0}, {4, 6}, {});
  // A query point beyond the priced columns stops accumulating at the edge.
  EXPECT_EQ(lb.bound({9, 0}, {{0, 0}, {0, 0}}), 4 + 6);
  EXPECT_EQ(lb.bound({-3, 0}, {{2, 0}, {2, 0}}), 4 + 6);
}

TEST(CutLowerBounds, UncrossableCutsClampInsteadOfOverflowing) {
  std::vector<std::int64_t> cuts(100, CutLowerBounds::kUncrossable * 8);
  const CutLowerBounds lb({0, 0}, std::move(cuts), {});
  EXPECT_EQ(lb.bound({0, 0}, {{100, 0}, {100, 0}}),
            100 * CutLowerBounds::kUncrossable);
  EXPECT_TRUE(lb.bound({0, 0}, {{100, 0}, {100, 0}}) > 0);  // no wraparound
}

TEST(CutLowerBounds, EmptyAndOffsetGrids) {
  EXPECT_TRUE(CutLowerBounds().empty());
  EXPECT_EQ(CutLowerBounds().bound({3, 3}, {{9, 9}, {9, 9}}), 0);
  // lo offset shifts the priced range.
  const CutLowerBounds lb({10, 10}, {4}, {5});
  EXPECT_EQ(lb.bound({10, 10}, {{11, 11}, {11, 11}}), 4 + 5);
  EXPECT_FALSE(lb.empty());
}

// ---------------------------------------------------------------------------
// GlobalRouter::congestion_lower_bounds — admissible vs. the real edge costs
// ---------------------------------------------------------------------------

// Brute-force Dijkstra over edge_cost from `from` to any cell of `box`.
std::int64_t gcell_dijkstra(const GlobalRouter& router, int cols, int rows,
                            Point from, const Rect& box) {
  const auto idx = [cols](Point p) { return p.y * cols + p.x; };
  std::vector<std::int64_t> dist(static_cast<std::size_t>(cols) * rows,
                                 INT64_MAX);
  using Entry = std::pair<std::int64_t, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[idx(from)] = 0;
  pq.push({0, idx(from)});
  while (!pq.empty()) {
    const auto [d, i] = pq.top();
    pq.pop();
    if (d > dist[i]) continue;
    const Point p{i % cols, i / cols};
    if (box.contains(p)) return d;
    const Point around[4] = {{p.x + 1, p.y}, {p.x - 1, p.y},
                             {p.x, p.y + 1}, {p.x, p.y - 1}};
    for (const Point q : around) {
      if (q.x < 0 || q.y < 0 || q.x >= cols || q.y >= rows) continue;
      const int c = router.edge_cost(p, q);
      if (c < 0) continue;
      if (d + c < dist[idx(q)]) {
        dist[idx(q)] = d + c;
        pq.push({d + c, idx(q)});
      }
    }
  }
  return INT64_MAX;  // unreachable
}

TEST(CongestionLowerBounds, AdmissibleAgainstEdgeCostDijkstra) {
  // Route a congested instance so usage and history price the edges, then
  // check the exported lower-bound grid against true shortest costs.
  const int cols = 9, rows = 7;
  GlobalGrid grid(cols, rows, 2, 2);
  grid.block({{4, 2}, {5, 4}});
  std::vector<GlobalNet> nets;
  Rng rng(31);
  for (int n = 0; n < 14; ++n) {
    GlobalNet net;
    net.name = "n" + std::to_string(n);
    for (int t = 0; t < 3; ++t) {
      Point p{rng.next_int(0, cols - 1), rng.next_int(0, rows - 1)};
      while (grid.blocked(p))
        p = {rng.next_int(0, cols - 1), rng.next_int(0, rows - 1)};
      net.terminals.push_back(p);
    }
    nets.push_back(std::move(net));
  }
  GlobalRouter router(std::move(grid), std::move(nets));
  (void)router.run();  // leaves usage + negotiation history priced in

  const CutLowerBounds lb = router.congestion_lower_bounds();
  EXPECT_FALSE(lb.empty());
  int reachable = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const Point from{rng.next_int(0, cols - 1), rng.next_int(0, rows - 1)};
    const Point to{rng.next_int(0, cols - 1), rng.next_int(0, rows - 1)};
    const Rect target{to, to};
    const std::int64_t truth =
        gcell_dijkstra(router, cols, rows, from, target);
    if (truth == INT64_MAX) continue;
    EXPECT_LE(lb.bound(from, target), truth)
        << from << " -> " << to << " (true " << truth << ")";
    ++reachable;
  }
  EXPECT_GT(reachable, 100);
}

}  // namespace
}  // namespace gridroute
