#include <gtest/gtest.h>

#include "verify/verify.hpp"

namespace gridroute {
namespace {

Problem two_pin_problem() {
  Problem p{Region(6, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{0, 1}, Layer::kMetal1, false});
  p.net(a).pins.push_back({{5, 1}, Layer::kMetal1, false});
  return p;
}

TEST(Verify, EmptyGridOfUnroutedNetIsCleanButIncomplete) {
  const Problem p = two_pin_problem();
  const RoutingGrid g(p.region(), p.net_count());
  const VerifyReport r = verify(p, g);
  EXPECT_TRUE(r.drc_clean());
  EXPECT_FALSE(r.all_ok());
  EXPECT_EQ(r.routable_net_count, 1);
  EXPECT_EQ(r.completed_net_count, 0);
  EXPECT_DOUBLE_EQ(r.completion_rate(), 0.0);
}

TEST(Verify, StraightWireCompletesNet) {
  const Problem p = two_pin_problem();
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 5; ++x) g.occupy({{x, 1}, Layer::kMetal1}, 0);
  const VerifyReport r = verify(p, g);
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.nets[0].wire_nodes, 6);
  EXPECT_TRUE(net_routed_ok(p, g, 0));
}

TEST(Verify, GapBreaksConnectivity) {
  const Problem p = two_pin_problem();
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 5; ++x)
    if (x != 3) g.occupy({{x, 1}, Layer::kMetal1}, 0);
  const VerifyReport r = verify(p, g);
  EXPECT_TRUE(r.drc_clean());  // no rule broken, just not connected
  EXPECT_FALSE(r.nets[0].connected);
  EXPECT_TRUE(r.nets[0].pins_covered);
  EXPECT_FALSE(net_routed_ok(p, g, 0));
}

TEST(Verify, StackedLayersWithoutViaAreNotConnected) {
  const Problem p = [] {
    Problem q{Region(4, 4)};
    const NetId a = q.add_net("a");
    q.net(a).pins.push_back({{0, 0}, Layer::kMetal1, false});
    q.net(a).pins.push_back({{0, 0}, Layer::kMetal2, false});
    return q;
  }();
  RoutingGrid g(p.region(), p.net_count());
  g.occupy({{0, 0}, Layer::kMetal1}, 0);
  g.occupy({{0, 0}, Layer::kMetal2}, 0);
  EXPECT_FALSE(net_routed_ok(p, g, 0));  // no via: electrically separate
  g.add_via({0, 0}, 0);
  EXPECT_TRUE(net_routed_ok(p, g, 0));
}

TEST(Verify, ViaJoinsLayers) {
  Problem p{Region(6, 6)};
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{0, 0}, Layer::kMetal1, false});
  p.net(a).pins.push_back({{2, 4}, Layer::kMetal2, false});
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 2; ++x) g.occupy({{x, 0}, Layer::kMetal1}, a);
  for (int y = 0; y <= 4; ++y) g.occupy({{2, y}, Layer::kMetal2}, a);
  EXPECT_FALSE(net_routed_ok(p, g, a));
  g.add_via({2, 0}, a);
  EXPECT_TRUE(net_routed_ok(p, g, a));
  EXPECT_TRUE(verify(p, g).all_ok());
}

TEST(Verify, AnyLayerPinCoveredByEitherLayer) {
  Problem p{Region(4, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins.push_back({{0, 0}, Layer::kMetal1, true});
  p.net(a).pins.push_back({{3, 0}, Layer::kMetal1, true});
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 3; ++x) g.occupy({{x, 0}, Layer::kMetal2}, a);
  EXPECT_TRUE(net_routed_ok(p, g, a));  // wire entirely on M2
}

TEST(Verify, SingleAndZeroPinNetsAreTriviallyOk) {
  Problem p{Region(4, 4)};
  p.add_net("empty");
  const NetId s = p.add_net("single");
  p.net(s).pins.push_back({{1, 1}, Layer::kMetal1, false});
  const RoutingGrid g(p.region(), p.net_count());
  const VerifyReport r = verify(p, g);
  EXPECT_TRUE(r.all_ok());
  EXPECT_EQ(r.routable_net_count, 0);
  EXPECT_DOUBLE_EQ(r.completion_rate(), 1.0);
}

TEST(Verify, FlagsWireBuryingForeignPin) {
  Problem p{Region(5, 5)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  p.net(a).pins.push_back({{0, 0}, Layer::kMetal1, false});
  p.net(a).pins.push_back({{4, 0}, Layer::kMetal1, false});
  p.net(b).pins.push_back({{2, 0}, Layer::kMetal1, false});
  p.net(b).pins.push_back({{2, 4}, Layer::kMetal1, false});
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 4; ++x) g.occupy({{x, 0}, Layer::kMetal1}, a);
  const VerifyReport r = verify(p, g);
  EXPECT_FALSE(r.drc_clean());
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("buries a pin"), std::string::npos);
}

TEST(Verify, PinOnOtherLayerAboveForeignPinIsFine) {
  // A single-layer pin reserves only its own layer: wire may pass above.
  Problem p{Region(5, 5)};
  const NetId a = p.add_net("a");
  const NetId b = p.add_net("b");
  p.net(a).pins.push_back({{0, 0}, Layer::kMetal2, false});
  p.net(a).pins.push_back({{4, 0}, Layer::kMetal2, false});
  p.net(b).pins.push_back({{2, 0}, Layer::kMetal1, false});
  p.net(b).pins.push_back({{2, 4}, Layer::kMetal1, false});
  RoutingGrid g(p.region(), p.net_count());
  for (int x = 0; x <= 4; ++x) g.occupy({{x, 0}, Layer::kMetal2}, a);
  EXPECT_TRUE(verify(p, g).drc_clean());
}

TEST(Verify, TwoComponentsCoveringPinsSeparatelyFail) {
  // Each pin covered, but by different components: must not count as done.
  const Problem p = two_pin_problem();
  RoutingGrid g(p.region(), p.net_count());
  g.occupy({{0, 1}, Layer::kMetal1}, 0);
  g.occupy({{5, 1}, Layer::kMetal1}, 0);
  const VerifyReport r = verify(p, g);
  EXPECT_TRUE(r.nets[0].pins_covered);
  EXPECT_FALSE(r.nets[0].connected);
}

TEST(Verify, CompletionRateAveragesNets) {
  Problem p{Region(8, 8)};
  for (int i = 0; i < 4; ++i) {
    const NetId id = p.add_net("n" + std::to_string(i));
    p.net(id).pins.push_back({{0, i * 2}, Layer::kMetal1, false});
    p.net(id).pins.push_back({{7, i * 2}, Layer::kMetal1, false});
  }
  RoutingGrid g(p.region(), p.net_count());
  for (int i = 0; i < 3; ++i)  // route 3 of 4
    for (int x = 0; x <= 7; ++x) g.occupy({{x, i * 2}, Layer::kMetal1}, i);
  const VerifyReport r = verify(p, g);
  EXPECT_EQ(r.completed_net_count, 3);
  EXPECT_DOUBLE_EQ(r.completion_rate(), 0.75);
}

}  // namespace
}  // namespace gridroute
