// BENCH_<name>.json report schema: serialization round-trip, parser
// robustness on hostile input, and the baseline gate semantics that
// scripts/bench.sh --check enforces.

#include <gtest/gtest.h>

#include <string>

#include "bench_suite/report.hpp"

namespace gridroute {
namespace {

using bench::BenchReport;
using bench::Gate;
using bench::GateCheck;

BenchReport sample_report() {
  BenchReport r = bench::make_report("search_kernel");
  r.add("inst/lee/ns_per_query", 1234.5, Gate::kLowerBetter, 0.5);
  r.add("inst/lee/expansions", 296718, Gate::kExact);
  r.add("inst/lee/cost_fingerprint", -12345, Gate::kExact);
  r.add("inst/coverage", 0.875, Gate::kHigherBetter, 0.2);
  r.add("inst/ratio", 0.5744, Gate::kInfo);
  return r;
}

TEST(BenchReport, JsonRoundTripsEveryField) {
  const BenchReport original = sample_report();
  const auto parsed = bench::parse_report(bench::to_json(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->schema, BenchReport::kSchemaVersion);
  EXPECT_EQ(parsed->bench, "search_kernel");
  EXPECT_EQ(parsed->os, original.os);
  EXPECT_EQ(parsed->compiler, original.compiler);
  EXPECT_EQ(parsed->hardware_threads, original.hardware_threads);
  ASSERT_EQ(parsed->metrics.size(), original.metrics.size());
  for (std::size_t i = 0; i < original.metrics.size(); ++i) {
    EXPECT_EQ(parsed->metrics[i].name, original.metrics[i].name);
    EXPECT_EQ(parsed->metrics[i].value, original.metrics[i].value);  // exact
    EXPECT_EQ(parsed->metrics[i].gate, original.metrics[i].gate);
  }
}

TEST(BenchReport, FindLooksUpByName) {
  const BenchReport r = sample_report();
  ASSERT_NE(r.find("inst/lee/expansions"), nullptr);
  EXPECT_EQ(r.find("inst/lee/expansions")->value, 296718);
  EXPECT_EQ(r.find("no/such/metric"), nullptr);
}

TEST(BenchReport, ParserSkipsUnknownFieldsForForwardCompatibility) {
  const std::string json = R"({
    "schema": 1, "bench": "x", "future_field": {"nested": [1, 2, {"a": "b"}]},
    "host": {"os": "linux", "kernel": "6.1", "compiler": "g", "hardware_threads": 4},
    "metrics": [{"name": "m", "value": 3, "gate": "exact", "note": "hi"}]
  })";
  const auto parsed = bench::parse_report(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->hardware_threads, 4);
  ASSERT_EQ(parsed->metrics.size(), 1u);
  EXPECT_EQ(parsed->metrics[0].gate, Gate::kExact);
}

TEST(BenchReport, ParserRejectsMalformedInputWithLocation) {
  // Every rejection is a kParse status with a position, never a crash.
  const std::string cases[] = {
      "",
      "{",
      "[1, 2]",
      R"({"schema": 1})",                               // missing bench
      R"({"bench": "x", "metrics": []})",               // missing schema
      R"({"schema": 99, "bench": "x"})",                // wrong version
      R"({"schema": 1, "bench": "x", "metrics": [{"value": 1}]})",
      R"({"schema": 1, "bench": "x"} trailing)",
      R"({"schema": 1, "bench": "x", "metrics": [{"name": "m", "value": 1,
          "gate": "sideways"}]})",                      // unknown gate
      R"({"schema": 1, "bench": "x", "metrics": [{"name": "unterminated)",
  };
  for (const std::string& text : cases) {
    const auto parsed = bench::parse_report(text, "case.json");
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    EXPECT_EQ(parsed.status().code(), ErrorCode::kParse) << text;
  }
}

TEST(BenchReport, ParserReportsLineAndColumn) {
  const auto parsed = bench::parse_report("{\n  \"schema\": bad\n}", "r.json");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().where().source, "r.json");
  EXPECT_EQ(parsed.status().where().line, 2);
}

// ---------------------------------------------------------------------------
// Baseline gate semantics
// ---------------------------------------------------------------------------

BenchReport gate_baseline() {
  BenchReport r = bench::make_report("k");
  r.add("fingerprint", 100, Gate::kExact);
  r.add("wall_ns", 1000.0, Gate::kLowerBetter, 0.5);
  r.add("speedup", 2.0, Gate::kHigherBetter, 0.25);
  r.add("note", 42, Gate::kInfo);
  return r;
}

TEST(GateCheckTest, IdenticalReportPasses) {
  const BenchReport b = gate_baseline();
  EXPECT_TRUE(bench::check_against_baseline(b, b).ok);
}

TEST(GateCheckTest, ExactMetricTripsOnAnyDeviation) {
  BenchReport cur = gate_baseline();
  cur.metrics[0].value = 101;
  EXPECT_FALSE(bench::check_against_baseline(cur, gate_baseline()).ok);
}

TEST(GateCheckTest, LowerBetterAllowsToleranceHeadroomOnly) {
  BenchReport cur = gate_baseline();
  cur.metrics[1].value = 1499.0;  // +49.9% of 1000, inside +50%
  EXPECT_TRUE(bench::check_against_baseline(cur, gate_baseline()).ok);
  cur.metrics[1].value = 1501.0;  // past the headroom
  EXPECT_FALSE(bench::check_against_baseline(cur, gate_baseline()).ok);
  cur.metrics[1].value = 1.0;     // improvements always pass
  EXPECT_TRUE(bench::check_against_baseline(cur, gate_baseline()).ok);
}

TEST(GateCheckTest, HigherBetterMirrorsLowerBetter) {
  BenchReport cur = gate_baseline();
  cur.metrics[2].value = 1.51;  // -24.5%, inside -25%
  EXPECT_TRUE(bench::check_against_baseline(cur, gate_baseline()).ok);
  cur.metrics[2].value = 1.49;
  EXPECT_FALSE(bench::check_against_baseline(cur, gate_baseline()).ok);
}

TEST(GateCheckTest, InfoMetricsNeverGate) {
  BenchReport cur = gate_baseline();
  cur.metrics[3].value = -1e9;
  EXPECT_TRUE(bench::check_against_baseline(cur, gate_baseline()).ok);
}

TEST(GateCheckTest, MissingGatedMetricIsACoverageRegression) {
  BenchReport cur = gate_baseline();
  cur.metrics.erase(cur.metrics.begin());  // drop the exact fingerprint
  EXPECT_FALSE(bench::check_against_baseline(cur, gate_baseline()).ok);
  // A missing *info* metric is not.
  BenchReport cur2 = gate_baseline();
  cur2.metrics.pop_back();
  EXPECT_TRUE(bench::check_against_baseline(cur2, gate_baseline()).ok);
}

TEST(GateCheckTest, NewMetricIsNotedButDoesNotGate) {
  BenchReport cur = gate_baseline();
  cur.add("brand_new", 7, Gate::kExact);
  const GateCheck check = bench::check_against_baseline(cur, gate_baseline());
  EXPECT_TRUE(check.ok);
  bool noted = false;
  for (const std::string& line : check.lines)
    noted = noted || line.find("brand_new") != std::string::npos;
  EXPECT_TRUE(noted);
}

TEST(GateCheckTest, BenchNameMismatchFails) {
  BenchReport cur = gate_baseline();
  cur.bench = "other";
  EXPECT_FALSE(bench::check_against_baseline(cur, gate_baseline()).ok);
}

TEST(BenchReport, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/bench_report_test.json";
  const BenchReport original = sample_report();
  ASSERT_TRUE(bench::write_report_file(original, path).ok());
  const auto read = bench::read_report_file(path);
  ASSERT_TRUE(read.ok()) << read.status().to_string();
  EXPECT_EQ(read->metrics.size(), original.metrics.size());
  EXPECT_FALSE(bench::read_report_file("/no/such/dir/x.json").ok());
}

}  // namespace
}  // namespace gridroute
