#include <gtest/gtest.h>

#include <set>

#include "bench_suite/query_batch.hpp"
#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"

namespace gridroute {
namespace {

TEST(HandInstances, SimpleChannelShape) {
  const ChannelSpec c = suite::simple_channel();
  EXPECT_EQ(c.columns(), 6);
  EXPECT_EQ(c.density(), 2);
  EXPECT_FALSE(ChannelAnalysis(c).vcg_has_cycle());
  EXPECT_TRUE(c.to_problem(2).validate().empty());
}

TEST(HandInstances, CycleChannelReallyCycles) {
  EXPECT_TRUE(ChannelAnalysis(suite::vcg_cycle_channel()).vcg_has_cycle());
}

TEST(HandInstances, ChainChannelCyclesOnlyAtNetLevel) {
  // The whole point of this instance: net-level VCG has a cycle, but the
  // middle pin of net 1 lets doglegs break it (see channel_test).
  const ChannelSpec c = suite::constraint_chain_channel();
  EXPECT_TRUE(ChannelAnalysis(c).vcg_has_cycle());
  // Net 1 has three pins, net 2 has two.
  const Problem p = c.to_problem(2);
  int three_pin = 0, two_pin = 0;
  for (const Net& n : p.nets()) {
    if (n.pins.size() == 3) ++three_pin;
    if (n.pins.size() == 2) ++two_pin;
  }
  EXPECT_EQ(three_pin, 1);
  EXPECT_EQ(two_pin, 1);
}

TEST(HandInstances, SwitchboxesValidate) {
  EXPECT_TRUE(suite::cross_switchbox().to_problem().validate().empty());
  EXPECT_TRUE(suite::dense_switchbox().to_problem().validate().empty());
}

TEST(DeutschClassGenerator, Deterministic) {
  const ChannelSpec a = suite::deutsch_class_channel(7, 60, 8);
  const ChannelSpec b = suite::deutsch_class_channel(7, 60, 8);
  EXPECT_EQ(a.top, b.top);
  EXPECT_EQ(a.bottom, b.bottom);
  const ChannelSpec c = suite::deutsch_class_channel(8, 60, 8);
  EXPECT_NE(a.top, c.top);  // different seed, different instance
}

TEST(DeutschClassGenerator, HitsTargetShape) {
  const ChannelSpec spec = suite::deutsch_class_channel(1976, 174, 19);
  EXPECT_EQ(spec.columns(), 174);
  const int density = ChannelAnalysis(spec).density();
  EXPECT_GE(density, 16);  // close to the target of 19...
  EXPECT_LE(density, 19);  // ...and never above it (lane packing bound)
}

TEST(DeutschClassGenerator, DensityBoundedByLanes) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const ChannelSpec spec = suite::deutsch_class_channel(seed, 60, 7);
    EXPECT_LE(ChannelAnalysis(spec).density(), 7) << "seed " << seed;
  }
}

TEST(DeutschClassGenerator, ProblemsValidate) {
  const ChannelSpec spec = suite::deutsch_class_channel(123, 100, 10);
  EXPECT_TRUE(spec.to_problem(12).validate().empty());
}

TEST(DeutschClassGenerator, HasMultiTerminalNets) {
  const ChannelSpec spec = suite::deutsch_class_channel(1976, 174, 19);
  const Problem p = spec.to_problem(19);
  int multi = 0;
  for (const Net& n : p.nets())
    if (n.pins.size() > 2) ++multi;
  EXPECT_GT(multi, 0);
}

TEST(BursteinClassGenerator, ShapeAndValidity) {
  const SwitchboxSpec s = suite::burstein_class_switchbox(1983);
  EXPECT_EQ(s.width(), 23);
  EXPECT_EQ(s.height(), 15);
  EXPECT_EQ(s.net_numbers().size(), 24u);
  EXPECT_TRUE(s.to_problem().validate().empty());
}

TEST(BursteinClassGenerator, NearSaturatedBoundary) {
  const SwitchboxSpec s = suite::burstein_class_switchbox(1983);
  int pins = 0;
  for (const auto* side : {&s.top, &s.bottom, &s.left, &s.right})
    for (int v : *side)
      if (v != 0) ++pins;
  // 24 nets with 2+3+4 pin mix: 72 of 98 distinct slots.
  EXPECT_GE(pins, 60);
}

TEST(BursteinClassGenerator, CornersNeverDoubleBooked) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SwitchboxSpec s = suite::burstein_class_switchbox(seed);
    EXPECT_EQ(s.left.front(), 0) << seed;
    EXPECT_EQ(s.left.back(), 0) << seed;
    EXPECT_EQ(s.right.front(), 0) << seed;
    EXPECT_EQ(s.right.back(), 0) << seed;
    EXPECT_TRUE(s.to_problem().validate().empty()) << seed;
  }
}

TEST(RandomSwitchbox, FillControlsPinCount) {
  const SwitchboxSpec sparse = suite::random_switchbox(5, 16, 12, 20, 4, 0.3);
  const SwitchboxSpec full = suite::random_switchbox(5, 16, 12, 20, 4, 0.9);
  auto count = [](const SwitchboxSpec& s) {
    int pins = 0;
    for (const auto* side : {&s.top, &s.bottom, &s.left, &s.right})
      for (int v : *side)
        if (v != 0) ++pins;
    return pins;
  };
  EXPECT_LT(count(sparse), count(full));
  EXPECT_TRUE(sparse.to_problem().validate().empty());
  EXPECT_TRUE(full.to_problem().validate().empty());
}

TEST(RandomSwitchbox, EveryNetHasAtLeastTwoPins) {
  const SwitchboxSpec s = suite::random_switchbox(9, 14, 10, 12, 4, 0.6);
  const Problem p = s.to_problem();
  for (const Net& n : p.nets()) EXPECT_GE(n.pins.size(), 2u) << n.name;
}

TEST(MacrocellRegion, ValidatesAndHasIrregularShape) {
  const Problem p = suite::macrocell_region(7);
  EXPECT_TRUE(p.validate().empty());
  EXPECT_GT(p.net_count(), 10);
  // The notch really is outside the region.
  EXPECT_FALSE(p.region().in_region({0, p.region().height() - 1}));
  // Obstacles really block.
  long long nodes = p.region().routable_node_count();
  EXPECT_LT(nodes, 2LL * p.region().width() * p.region().height());
}

TEST(MacrocellRegion, Deterministic) {
  const Problem a = suite::macrocell_region(11);
  const Problem b = suite::macrocell_region(11);
  ASSERT_EQ(a.net_count(), b.net_count());
  for (NetId id = 0; id < a.net_count(); ++id)
    EXPECT_EQ(a.net(id).pins, b.net(id).pins);
}

TEST(Suites, NonEmptyAndUniquelyNamed) {
  std::set<std::string> channel_names;
  for (const auto& [name, spec] : suite::channel_suite()) {
    EXPECT_TRUE(channel_names.insert(name).second) << name;
    EXPECT_GT(spec.columns(), 0);
  }
  EXPECT_GE(channel_names.size(), 6u);

  std::set<std::string> box_names;
  for (const auto& [name, spec] : suite::switchbox_suite()) {
    EXPECT_TRUE(box_names.insert(name).second) << name;
    EXPECT_TRUE(spec.to_problem().validate().empty()) << name;
  }
  EXPECT_GE(box_names.size(), 6u);
}

// ---------------------------------------------------------------------------
// make_query_batch — the shared kernel-bench workload generator
// ---------------------------------------------------------------------------

TEST(QueryBatch, DeterministicForAFixedSeed) {
  const Problem p = suite::burstein_class_switchbox(1983).to_problem();
  const auto a = suite::make_query_batch(p, 42);
  const auto b = suite::make_query_batch(p, 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].net, b[i].net);
    EXPECT_EQ(a[i].sources, b[i].sources);
    EXPECT_EQ(a[i].targets, b[i].targets);
    EXPECT_EQ(a[i].allow_push, b[i].allow_push);
  }
  // Different seeds draw different batches.
  const auto c = suite::make_query_batch(p, 43);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_different = any_different || a[i].sources != c[i].sources;
  EXPECT_TRUE(any_different);
}

TEST(QueryBatch, ZeroNetProblemDrawsNoNetId) {
  // A problem with no nets used to feed net_count() == 0 straight into
  // Rng::next_below, violating its positive-bound contract; the generator
  // must instead leave the query netless (kNoNet, which every router
  // accepts) and still produce a full usable batch.
  const Problem empty{Region(16, 12)};
  ASSERT_EQ(empty.net_count(), 0);
  const auto batch = suite::make_query_batch(empty, 42, {.queries = 50});
  ASSERT_EQ(batch.size(), 50u);
  for (const SearchRequest& req : batch) EXPECT_EQ(req.net, kNoNet);
}

TEST(QueryBatch, NoDegenerateSourceEqualsTargetQueries) {
  // Degenerate draws (source == target) answer in zero kernel work and
  // would dilute every timed batch; the generator rerolls them seed-stably.
  for (const std::uint64_t seed : {1u, 42u, 1983u, 777u}) {
    const Problem p = suite::burstein_class_switchbox(seed % 100 + 1)
                          .to_problem();
    for (const SearchRequest& req :
         suite::make_query_batch(p, seed, {.queries = 500}))
      EXPECT_NE(req.sources[0], req.targets[0]) << "seed " << seed;
  }
}

TEST(QueryBatch, TinyRegionKeepsDegeneratePairInsteadOfLooping) {
  // A 1x1 region cannot separate two draws on the same layer every time;
  // the bounded reroll must terminate and still emit the batch.
  const Problem tiny{Region(1, 1)};
  const auto batch = suite::make_query_batch(tiny, 7, {.queries = 20});
  EXPECT_EQ(batch.size(), 20u);
}

}  // namespace
}  // namespace gridroute
