#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_suite/suite.hpp"
#include "channel/channel_incremental.hpp"
#include "core/api.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

TEST(Api, NullProblemThrows) {
  EXPECT_THROW(route(RouteRequest{}), std::invalid_argument);
}

TEST(Api, PlainRunMatchesLegacyRoute) {
  // The legacy route() is now a wrapper over route(RouteRequest); both
  // shapes must produce the same grid and counters.
  const Problem p = suite::dense_switchbox().to_problem();
  const RoutedDesign legacy = route(p);

  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);

  EXPECT_EQ(result.grid.total_nodes(), legacy.grid.total_nodes());
  EXPECT_EQ(result.grid.total_vias(), legacy.grid.total_vias());
  EXPECT_EQ(result.failed, legacy.outcome.failed);
  EXPECT_EQ(result.stats.nets_routed, legacy.outcome.stats.nets_routed);
  EXPECT_EQ(result.stats.expansions, legacy.outcome.stats.expansions);

  // The legacy shape reports no attempts after a plain route(); the new
  // shape reports itself as attempt 0.
  EXPECT_TRUE(legacy.attempts.empty());
  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_EQ(result.attempts[0].index, 0);
  EXPECT_TRUE(result.attempts[0].ran);
  EXPECT_EQ(result.attempts[0].expansions, result.stats.expansions);
}

TEST(Api, MultiStartMatchesLegacyBestOf) {
  const Problem p = suite::burstein_class_switchbox().to_problem();
  RouterOptions options;
  options.threads = 2;
  const RoutedDesign legacy = route_best_of(p, 3, options);

  RouteRequest request;
  request.problem = &p;
  request.options = options;
  request.extra_attempts = 3;
  const RouteResult result = route(request);

  EXPECT_EQ(result.winning_attempt, legacy.winning_attempt);
  EXPECT_EQ(result.winning_seed, legacy.winning_seed);
  EXPECT_EQ(result.grid.total_nodes(), legacy.grid.total_nodes());
  EXPECT_EQ(result.grid.total_vias(), legacy.grid.total_vias());
  EXPECT_EQ(result.failed, legacy.outcome.failed);
  ASSERT_EQ(result.attempts.size(), 4u);
  ASSERT_EQ(legacy.attempts.size(), 4u);
  for (std::size_t i = 0; i < result.attempts.size(); ++i) {
    EXPECT_EQ(result.attempts[i].seed, legacy.attempts[i].seed);
    EXPECT_EQ(result.attempts[i].nets_routed, legacy.attempts[i].nets_routed);
  }
}

TEST(Api, OutcomeIsTheLegacyView) {
  const Problem p = suite::cross_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  const RouteOutcome outcome = result.outcome();
  EXPECT_EQ(outcome.failed, result.failed);
  EXPECT_EQ(outcome.stats.nets_routed, result.stats.nets_routed);
  EXPECT_EQ(outcome.complete(), result.complete());
}

TEST(Api, TotalExpansionsSumsAttemptsThatRan) {
  // Overfilled: nothing completes, so no attempt is cancelled and the sum
  // covers all of them.
  const Problem p = suite::overfilled_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  request.extra_attempts = 2;
  const RouteResult result = route(request);
  ASSERT_EQ(result.attempts.size(), 3u);
  long long sum = 0;
  for (const AttemptReport& a : result.attempts) {
    EXPECT_TRUE(a.ran);
    EXPECT_FALSE(a.complete);
    sum += a.expansions;
  }
  EXPECT_EQ(result.total_expansions, sum);
}

TEST(Api, ImprovePassesRunInsideTheAttempt) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest plain;
  plain.problem = &p;
  const RouteResult base = route(plain);

  RouteRequest polished = plain;
  polished.improve_passes = 2;
  const RouteResult result = route(polished);

  ASSERT_TRUE(result.complete());
  EXPECT_GE(result.improved, 0);
  // Clean-up never makes the wiring worse, and the result still verifies.
  EXPECT_LE(result.grid.total_nodes() + 4 * result.grid.total_vias(),
            base.grid.total_nodes() + 4 * base.grid.total_vias());
  EXPECT_TRUE(verify(p, result.grid).all_ok());
  // Both phases are reported distinctly in the snapshot.
  EXPECT_GT(result.stats.run_ms, 0.0);
  EXPECT_GT(result.stats.improve_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.stats.wall_ms,
                   result.stats.run_ms + result.stats.improve_ms);
}

TEST(Api, MetricsSnapshotTravelsWithTheResult) {
  const Problem p = suite::cross_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  EXPECT_EQ(result.metrics.counter("expansions"), result.stats.expansions);
  EXPECT_EQ(result.metrics.counter("nets_attempted"),
            result.stats.nets_attempted);
}

TEST(Api, ChannelLadderMatchesLegacyWrapper) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelRouteResult routed = route_channel(spec);
  const IncrementalChannelResult legacy = route_channel_incremental(spec);

  ASSERT_TRUE(routed.success);
  ASSERT_TRUE(legacy.success);
  EXPECT_EQ(routed.tracks, legacy.tracks);
  EXPECT_EQ(routed.wire_nodes, legacy.wire_nodes);
  EXPECT_EQ(routed.vias, legacy.vias);
  ASSERT_TRUE(routed.result.has_value());
  EXPECT_TRUE(routed.result->complete());
  EXPECT_EQ(routed.result->stats.nets_routed, legacy.stats.nets_routed);
}

TEST(Api, ChannelLadderCarriesTheBudget) {
  // An expansion budget far too small for even the narrowest width stops
  // the ladder instead of walking every track count.
  const ChannelSpec spec = suite::dense_channel();
  RouteRequest base;
  base.budget.max_expansions = 5;
  const ChannelRouteResult routed = route_channel(spec, base);
  EXPECT_FALSE(routed.success);
  EXPECT_FALSE(routed.result.has_value());
}

}  // namespace
}  // namespace gridroute
