#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_suite/suite.hpp"
#include "channel/channel_incremental.hpp"
#include "core/api.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

TEST(Api, NullProblemThrows) {
  EXPECT_THROW(route(RouteRequest{}), std::invalid_argument);
}

TEST(Api, PlainRunReportsItselfAsAttemptZero) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);

  ASSERT_EQ(result.attempts.size(), 1u);
  EXPECT_EQ(result.attempts[0].index, 0);
  EXPECT_TRUE(result.attempts[0].ran);
  EXPECT_EQ(result.attempts[0].expansions, result.stats.expansions);
  EXPECT_TRUE(verify(p, result.grid).drc_clean());
}

TEST(Api, MultiStartIsThreadCountInvariant) {
  const Problem p = suite::burstein_class_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  request.options.threads = 1;
  request.extra_attempts = 3;
  const RouteResult serial = route(request);

  request.options.threads = 2;
  const RouteResult pooled = route(request);

  EXPECT_EQ(pooled.winning_attempt, serial.winning_attempt);
  EXPECT_EQ(pooled.winning_seed, serial.winning_seed);
  EXPECT_EQ(pooled.grid.total_nodes(), serial.grid.total_nodes());
  EXPECT_EQ(pooled.grid.total_vias(), serial.grid.total_vias());
  EXPECT_EQ(pooled.failed, serial.failed);
  ASSERT_EQ(pooled.attempts.size(), 4u);
  ASSERT_EQ(serial.attempts.size(), 4u);
  for (std::size_t i = 0; i < pooled.attempts.size(); ++i) {
    EXPECT_EQ(pooled.attempts[i].seed, serial.attempts[i].seed);
    EXPECT_EQ(pooled.attempts[i].nets_routed, serial.attempts[i].nets_routed);
  }
}

TEST(Api, TotalExpansionsSumsAttemptsThatRan) {
  // Overfilled: nothing completes, so no attempt is cancelled and the sum
  // covers all of them.
  const Problem p = suite::overfilled_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  request.extra_attempts = 2;
  const RouteResult result = route(request);
  ASSERT_EQ(result.attempts.size(), 3u);
  long long sum = 0;
  for (const AttemptReport& a : result.attempts) {
    EXPECT_TRUE(a.ran);
    EXPECT_FALSE(a.complete);
    sum += a.expansions;
  }
  EXPECT_EQ(result.total_expansions, sum);
}

TEST(Api, ImprovePassesRunInsideTheAttempt) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouteRequest plain;
  plain.problem = &p;
  const RouteResult base = route(plain);

  RouteRequest polished = plain;
  polished.improve_passes = 2;
  const RouteResult result = route(polished);

  ASSERT_TRUE(result.complete());
  EXPECT_GE(result.improved, 0);
  // Clean-up never makes the wiring worse, and the result still verifies.
  EXPECT_LE(result.grid.total_nodes() + 4 * result.grid.total_vias(),
            base.grid.total_nodes() + 4 * base.grid.total_vias());
  EXPECT_TRUE(verify(p, result.grid).all_ok());
  // Both phases are reported distinctly in the snapshot.
  EXPECT_GT(result.stats.run_ms, 0.0);
  EXPECT_GT(result.stats.improve_ms, 0.0);
  EXPECT_DOUBLE_EQ(result.stats.wall_ms,
                   result.stats.run_ms + result.stats.improve_ms);
}

TEST(Api, MetricsSnapshotTravelsWithTheResult) {
  const Problem p = suite::cross_switchbox().to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  EXPECT_EQ(result.metrics.counter("expansions"), result.stats.expansions);
  EXPECT_EQ(result.metrics.counter("nets_attempted"),
            result.stats.nets_attempted);
}

TEST(Api, ChannelLadderRoutesAtDensity) {
  const ChannelSpec spec = suite::simple_channel();
  const ChannelRouteResult routed = route_channel(spec);

  ASSERT_TRUE(routed.success);
  EXPECT_GE(routed.tracks, spec.density());
  ASSERT_TRUE(routed.result.has_value());
  EXPECT_TRUE(routed.result->complete());
  EXPECT_GT(routed.wire_nodes, 0);
}

TEST(Api, ChannelLadderCarriesTheBudget) {
  // An expansion budget far too small for even the narrowest width stops
  // the ladder instead of walking every track count.
  const ChannelSpec spec = suite::dense_channel();
  RouteRequest base;
  base.budget.max_expansions = 5;
  const ChannelRouteResult routed = route_channel(spec, base);
  EXPECT_FALSE(routed.success);
  EXPECT_FALSE(routed.result.has_value());
}

}  // namespace
}  // namespace gridroute
