// Cross-pipeline tests: chain independent subsystems end to end and let
// the verifier and the serializers check each other. A bug in any link
// (router, realization, text format, verifier) breaks the chain somewhere
// visible.

#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_routers.hpp"
#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "core/stub_pruner.hpp"
#include "io/solution_format.hpp"
#include "io/text_format.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// Channel router -> grid realization -> solution text -> reparse -> audit.
void channel_through_serializer(const ChannelSpec& spec,
                                const ChannelResult& res,
                                const std::string& who) {
  ASSERT_TRUE(res.success) << who << ": " << res.reason;
  RealizedChannel real = realize(spec, res.solution);
  ASSERT_TRUE(verify(real.problem, real.grid).all_ok()) << who;

  const std::string text = solution_to_string(real.problem, real.grid);
  const RoutingGrid loaded = parse_solution_string(text, real.problem);
  EXPECT_TRUE(verify(real.problem, loaded).all_ok()) << who;
  EXPECT_EQ(loaded.total_nodes(), real.grid.total_nodes()) << who;
  EXPECT_EQ(loaded.total_vias(), real.grid.total_vias()) << who;
}

TEST(Pipeline, EveryChannelRouterSurvivesSerialization) {
  const ChannelSpec spec = suite::dense_channel();
  channel_through_serializer(spec, route_left_edge(spec), "left-edge");
  channel_through_serializer(spec, route_yoshimura_kuh(spec), "yk");
  channel_through_serializer(spec, route_dogleg(spec), "dogleg");
  channel_through_serializer(spec, route_greedy(spec), "greedy");
}

TEST(Pipeline, RouteImprovePruneSerializeVerify) {
  // The full quality pipeline on an irregular region.
  const Problem p = suite::macrocell_region(33);
  IncrementalRouter router(p);
  router.run();
  router.improve(2);
  prune_all_stubs(p, router.grid());
  const VerifyReport before = verify(p, router.grid());
  ASSERT_TRUE(before.drc_clean());

  const RoutingGrid loaded =
      parse_solution_string(solution_to_string(p, router.grid()), p);
  const VerifyReport after = verify(p, loaded);
  EXPECT_EQ(after.completed_net_count, before.completed_net_count);
  EXPECT_EQ(after.total_wire_nodes, before.total_wire_nodes);
  EXPECT_EQ(after.total_vias, before.total_vias);
}

TEST(Pipeline, ProblemTextSurvivesPrewireAndRoutes) {
  // A problem with a fixed strap goes through the problem serializer, then
  // routes identically on both sides of the round trip.
  Problem original{Region(12, 8)};
  const NetId strap = original.add_net("vdd");
  original.net(strap).fixed = true;
  original.net(strap).pins = {{{0, 4}, Layer::kMetal1, false},
                              {{11, 4}, Layer::kMetal1, false}};
  original.net(strap).prewire = {
      {{{0, 4}, Layer::kMetal1}, {{11, 4}, Layer::kMetal1}}};
  const NetId sig = original.add_net("sig");
  original.net(sig).pins = {{{5, 0}, Layer::kMetal1, true},
                            {{5, 7}, Layer::kMetal1, true}};
  ASSERT_TRUE(original.validate().empty());

  const Problem reparsed = parse_problem_string(problem_to_string(original));
  ASSERT_TRUE(reparsed.validate().empty());

  IncrementalRouter r1(original), r2(reparsed);
  const RouteOutcome a = r1.run();
  const RouteOutcome b = r2.run();
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(r1.grid().total_nodes(), r2.grid().total_nodes());
  EXPECT_EQ(r1.grid().total_vias(), r2.grid().total_vias());
  // The strap survived untouched in both.
  EXPECT_EQ(r1.grid().node_count(strap), 12);
  EXPECT_EQ(r2.grid().node_count(strap), 12);
}

TEST(Pipeline, SolutionReloadedIntoRouterAsPrewire) {
  // A routed layout can be handed back as pre-wire: turn every net's
  // solution into fixed pre-routes and confirm a fresh router accepts the
  // state and verifies it — the "partially routed area" workflow end to
  // end, through the serializer.
  const Problem p = suite::cross_switchbox().to_problem();
  IncrementalRouter first(p);
  ASSERT_TRUE(first.run().complete());

  Problem reloaded = p;  // copy pins/region; attach wire as prewire
  for (NetId id = 0; id < p.net_count(); ++id) {
    Net& net = reloaded.net(id);
    net.fixed = true;
    for (const GridPoint& g : first.grid().net_nodes(id))
      net.prewire.push_back({g, g});  // degenerate one-cell segments
    for (const GridPoint& g : first.grid().net_nodes(id))
      if (g.layer == Layer::kMetal1 && first.grid().via_owner(g.pos) == id)
        net.previas.push_back({g.pos});
  }
  ASSERT_TRUE(reloaded.validate().empty());

  IncrementalRouter second(reloaded);
  const RouteOutcome out = second.run();
  EXPECT_TRUE(out.complete());
  EXPECT_EQ(out.stats.nets_attempted, 0);  // nothing left to route
  EXPECT_TRUE(verify(reloaded, second.grid()).all_ok());
  EXPECT_EQ(second.grid().total_nodes(), first.grid().total_nodes());
}

TEST(Pipeline, MultiStartFeedsImproveAndSerializer) {
  const Problem p = suite::burstein_class_switchbox(8).to_problem();
  RouteRequest request;
  request.problem = &p;
  request.extra_attempts = 3;
  const RouteResult design = route(request);
  const VerifyReport before = verify(p, design.grid);
  ASSERT_TRUE(before.drc_clean());
  const RoutingGrid loaded =
      parse_solution_string(solution_to_string(p, design.grid), p);
  EXPECT_EQ(verify(p, loaded).completed_net_count,
            before.completed_net_count);
}

}  // namespace
}  // namespace gridroute
