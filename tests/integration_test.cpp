#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_incremental.hpp"
#include "channel/channel_routers.hpp"
#include "core/incremental_router.hpp"
#include "core/stub_pruner.hpp"
#include "io/text_format.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// End-to-end: every suite instance through the full router + verifier
// ---------------------------------------------------------------------------

class SwitchboxEndToEnd
    : public ::testing::TestWithParam<suite::NamedSwitchbox> {};

TEST_P(SwitchboxEndToEnd, RouterOutputAlwaysVerifies) {
  const Problem p = GetParam().spec.to_problem();
  ASSERT_TRUE(p.validate().empty());
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  const VerifyReport report = verify(p, router.grid());
  // Core guarantee: whatever the router claims, the independent verifier
  // agrees — no shorts, no buried pins, claimed nets really connected.
  EXPECT_TRUE(report.drc_clean()) << GetParam().name;
  const int claimed = out.stats.nets_routed;
  EXPECT_EQ(claimed, report.completed_net_count) << GetParam().name;
}

TEST_P(SwitchboxEndToEnd, PruningNeverBreaksRoutedNets) {
  const Problem p = GetParam().spec.to_problem();
  IncrementalRouter router(p);
  router.run();
  const VerifyReport before = verify(p, router.grid());
  prune_all_stubs(p, router.grid());
  const VerifyReport after = verify(p, router.grid());
  EXPECT_TRUE(after.drc_clean());
  EXPECT_EQ(after.completed_net_count, before.completed_net_count);
  EXPECT_LE(after.total_wire_nodes, before.total_wire_nodes);
}

TEST_P(SwitchboxEndToEnd, DeterministicAcrossRuns) {
  const Problem p = GetParam().spec.to_problem();
  IncrementalRouter first(p);
  const RouteOutcome a = first.run();
  IncrementalRouter second(p);
  const RouteOutcome b = second.run();
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.stats.weak_modifications, b.stats.weak_modifications);
  EXPECT_EQ(a.stats.strong_ripups, b.stats.strong_ripups);
  EXPECT_EQ(first.grid().total_nodes(), second.grid().total_nodes());
  EXPECT_EQ(first.grid().total_vias(), second.grid().total_vias());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SwitchboxEndToEnd, ::testing::ValuesIn(suite::switchbox_suite()),
    [](const ::testing::TestParamInfo<suite::NamedSwitchbox>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---------------------------------------------------------------------------
// Channels end to end
// ---------------------------------------------------------------------------

TEST(ChannelEndToEnd, IncrementalRoutesEverySuiteChannel) {
  RouteRequest base;
  base.options = channel_router_options();
  for (const auto& [name, spec] : suite::channel_suite()) {
    const ChannelRouteResult res = route_channel(spec, base, 6);
    EXPECT_TRUE(res.success) << name;
    if (res.success) {
      const int density = ChannelAnalysis(spec).density();
      EXPECT_LE(res.tracks, density + 4) << name;
    }
  }
}

TEST(ChannelEndToEnd, IncrementalMatchesOrBeatsGreedyTracks) {
  // The headline comparison: the rip-up router needs no more tracks than
  // the greedy baseline on any suite channel it completes.
  for (const auto& [name, spec] : suite::channel_suite()) {
    const ChannelResult greedy = route_greedy(spec);
    RouteRequest base;
    base.options = channel_router_options();
    const ChannelRouteResult inc = route_channel(spec, base, 6);
    if (greedy.success && inc.success) {
      EXPECT_LE(inc.tracks, greedy.tracks()) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Macro-cell regions (irregular boundaries, obstacles, inner pins)
// ---------------------------------------------------------------------------

TEST(MacrocellEndToEnd, RoutesIrregularRegions) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const Problem p = suite::macrocell_region(seed);
    ASSERT_TRUE(p.validate().empty());
    IncrementalRouter router(p);
    const RouteOutcome out = router.run();
    const VerifyReport report = verify(p, router.grid());
    EXPECT_TRUE(report.drc_clean()) << "seed " << seed;
    EXPECT_GE(report.completion_rate(), 0.9) << "seed " << seed;
    (void)out;
  }
}

TEST(MacrocellEndToEnd, WiresRespectObstaclesAndOutline) {
  const Problem p = suite::macrocell_region(7);
  IncrementalRouter router(p);
  router.run();
  for (NetId id = 0; id < p.net_count(); ++id)
    for (const GridPoint& g : router.grid().net_nodes(id)) {
      EXPECT_TRUE(p.region().in_region(g.pos));
      EXPECT_TRUE(p.region().routable(g));
    }
}

// ---------------------------------------------------------------------------
// Text round trip through the full pipeline
// ---------------------------------------------------------------------------

TEST(PipelineRoundTrip, SerializedProblemRoutesIdentically) {
  const Problem original = suite::macrocell_region(12);
  const Problem reparsed = parse_problem_string(problem_to_string(original));

  IncrementalRouter r1(original);
  IncrementalRouter r2(reparsed);
  const RouteOutcome a = r1.run();
  const RouteOutcome b = r2.run();
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(r1.grid().total_nodes(), r2.grid().total_nodes());
}

TEST(PipelineRoundTrip, SwitchboxSpecThroughTextThroughRouter) {
  const SwitchboxSpec spec = suite::burstein_class_switchbox(50);
  const SwitchboxSpec reparsed =
      parse_switchbox_string(switchbox_to_string(spec));
  const Problem p1 = spec.to_problem();
  const Problem p2 = reparsed.to_problem();
  IncrementalRouter r1(p1), r2(p2);
  r1.run();
  r2.run();
  EXPECT_EQ(r1.grid().total_nodes(), r2.grid().total_nodes());
}

// ---------------------------------------------------------------------------
// Cross-router agreement
// ---------------------------------------------------------------------------

TEST(CrossRouter, AllFourProduceVerifiedLayoutsOnSimpleChannel) {
  const ChannelSpec spec = suite::simple_channel();
  const int density = ChannelAnalysis(spec).density();

  for (auto* routefn : {&route_left_edge, &route_dogleg}) {
    const ChannelResult res = (*routefn)(spec);
    ASSERT_TRUE(res.success);
    RealizedChannel real = realize(spec, res.solution);
    EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
  }
  const ChannelResult greedy = route_greedy(spec);
  ASSERT_TRUE(greedy.success);
  RealizedChannel real = realize(spec, greedy.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());

  const ChannelRouteResult inc = route_channel(spec);
  EXPECT_TRUE(inc.success);
  EXPECT_EQ(inc.tracks, density);
}

}  // namespace
}  // namespace gridroute
