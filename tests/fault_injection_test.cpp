#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "core/wave_pool.hpp"
#include "io/solution_format.hpp"
#include "obs/trace.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// Differential fuzz for the fault-injection subsystem (DESIGN.md §2.1f).
///
/// The degradation contract: for every (instance, seed) fault schedule,
/// route() returns normally with a verifier-clean partial layout, a failed
/// list that exactly matches the grid, and a degradation record of what was
/// lost; and a schedule whose armed arrival is never reached must leave the
/// run byte-identical — layout, failed list, and full trace — to a run with
/// no injector at all. These tests sweep seeded schedules across instance
/// families and assert exactly that.
///
/// GRIDROUTE_FAULT_INSTANCES scales the schedule count (default 200); the
/// sanitizer re-runs in scripts/tier1.sh set it low so TSan's ~20x
/// slowdown stays inside the timeout while still crossing every site.

class VectorSink : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent& event) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }

  std::vector<obs::TraceEvent> events() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<obs::TraceEvent> events_;
};

int schedule_budget() {
  if (const char* env = std::getenv("GRIDROUTE_FAULT_INSTANCES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

struct Artifacts {
  std::string layout;
  std::vector<NetId> failed;
  std::vector<obs::TraceEvent> trace;
  RouteResult result;
};

Artifacts route_instance(const Problem& p, fault::Injector* faults,
                         int net_threads = 2) {
  VectorSink sink;
  RouteRequest request;
  request.problem = &p;
  request.options.net_threads = net_threads;
  request.improve_passes = 1;
  request.trace = &sink;
  request.faults = faults;
  RouteResult result = route(request);
  return {solution_to_string(p, result.grid), result.failed, sink.events(),
          std::move(result)};
}

bool has_event(const std::vector<obs::TraceEvent>& trace,
               obs::EventKind kind) {
  return std::any_of(trace.begin(), trace.end(), [&](const obs::TraceEvent& e) {
    return e.kind == kind;
  });
}

/// The degradation invariant checked after every injected schedule.
void expect_graceful(const Problem& p, const Artifacts& got,
                     const fault::Injector& inj) {
  SCOPED_TRACE(inj.plan());
  // No schedule may reject a valid problem...
  EXPECT_TRUE(got.result.status.ok());
  // ...and the salvaged layout is verifier-clean: whatever wire survived
  // obeys every DRC rule the independent auditor checks.
  const VerifyReport report = verify(p, got.result.grid);
  EXPECT_TRUE(report.drc_clean()) << report.violations.front();
  // The failed list is an exact statement about the grid.
  const std::set<NetId> failed(got.failed.begin(), got.failed.end());
  for (NetId id = 0; id < p.net_count(); ++id) {
    if (p.net(id).pins.size() < 2 || p.net(id).fixed) continue;
    EXPECT_EQ(net_routed_ok(p, got.result.grid, id), !failed.count(id))
        << "net " << id;
  }
  if (inj.fired()) {
    // Every fired fault is accounted for in the degradation record.
    EXPECT_FALSE(got.result.degradation.empty());
    // And announced in the trace — except a sink fault, which by design
    // kills the channel that would have carried the announcement.
    if (inj.site() != fault::Site::kSinkEmit) {
      EXPECT_TRUE(has_event(got.trace, obs::EventKind::kFaultInjected));
    }
  }
}

TEST(FaultInjection, SeededSchedulesDegradeGracefully) {
  // The bulk sweep: each seed names one deterministic schedule (site +
  // arrival) over a seeded instance; unfired schedules must be byte-
  // identical to the fault-free baseline, fired ones must degrade
  // gracefully.
  const int count = std::max(1, schedule_budget());
  int fired = 0;
  std::set<fault::Site> fired_sites;
  for (int i = 0; i < count; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    const int width = 10 + (i * 5) % 13;
    const int height = 8 + (i * 3) % 11;
    const int nets = 6 + (i * 7) % 13;
    const Problem p =
        i % 4 == 0
            ? suite::overfilled_switchbox(seed, width, height, nets + 8)
                  .to_problem()
            : suite::random_switchbox(seed, width, height, nets).to_problem();
    SCOPED_TRACE("seed=" + std::to_string(seed));

    const Artifacts baseline = route_instance(p, nullptr);
    fault::Injector inj(seed);
    const Artifacts faulted = route_instance(p, &inj);
    expect_graceful(p, faulted, inj);
    if (inj.fired()) {
      ++fired;
      fired_sites.insert(inj.site());
    } else {
      // Never-reached schedule: the probes are pure counters, so the run
      // must be indistinguishable from no injector at all.
      SCOPED_TRACE("unfired " + inj.plan());
      EXPECT_EQ(faulted.layout, baseline.layout);
      EXPECT_EQ(faulted.failed, baseline.failed);
      EXPECT_EQ(faulted.trace, baseline.trace);
      EXPECT_TRUE(faulted.result.degradation.empty());
    }
  }
  // The seeded site/arrival lottery must actually exercise the machinery:
  // with the default budget, a healthy majority of schedules fire and they
  // cover several distinct sites.
  if (schedule_budget() >= 200) {
    EXPECT_GE(fired, count / 4);
    EXPECT_GE(fired_sites.size(), 3u);
  }
}

TEST(FaultInjection, ZeroFaultRunsAreBitIdentical) {
  // Arm each site at an arrival no run of this size ever reaches: the
  // injector must be a pure observer.
  const Problem p = suite::random_switchbox(11, 16, 12, 12).to_problem();
  const Artifacts baseline = route_instance(p, nullptr);
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    fault::Injector inj =
        fault::Injector::at(static_cast<fault::Site>(s), 1'000'000'000);
    SCOPED_TRACE(inj.plan());
    const Artifacts got = route_instance(p, &inj);
    EXPECT_FALSE(inj.fired());
    EXPECT_EQ(got.layout, baseline.layout);
    EXPECT_EQ(got.failed, baseline.failed);
    EXPECT_EQ(got.trace, baseline.trace);
    EXPECT_TRUE(got.result.degradation.empty());
  }
}

// -- targeted per-site regressions -----------------------------------------

TEST(FaultInjection, SearchQueryFaultIsAbsorbed) {
  // Models a throwing cost provider inside the kernel: the net being
  // routed (or speculated) when it fires is rolled back, everything else
  // proceeds.
  const Problem p = suite::random_switchbox(3, 14, 10, 10).to_problem();
  for (const long long arrival : {1, 7, 29}) {
    fault::Injector inj =
        fault::Injector::at(fault::Site::kSearchQuery, arrival);
    const Artifacts got = route_instance(p, &inj, /*net_threads=*/8);
    ASSERT_TRUE(inj.fired());
    expect_graceful(p, got, inj);
  }
}

TEST(FaultInjection, NetCommitFaultRollsBackOneNet) {
  const Problem p = suite::random_switchbox(5, 14, 10, 10).to_problem();
  fault::Injector inj = fault::Injector::at(fault::Site::kNetCommit, 2);
  const Artifacts got = route_instance(p, &inj);
  ASSERT_TRUE(inj.fired());
  expect_graceful(p, got, inj);
  EXPECT_TRUE(has_event(got.trace, obs::EventKind::kDegraded));
}

TEST(FaultInjection, WaveSpeculateFaultFallsBackToSerial) {
  // Speculation is an optimization: losing a wave to a worker fault must
  // not change the committed layout at all.
  const Problem p = suite::random_switchbox(9, 18, 14, 14).to_problem();
  const Artifacts baseline = route_instance(p, nullptr);
  fault::Injector inj = fault::Injector::at(fault::Site::kWaveSpeculate, 1);
  const Artifacts got = route_instance(p, &inj, /*net_threads=*/4);
  ASSERT_TRUE(inj.fired());
  expect_graceful(p, got, inj);
  EXPECT_EQ(got.layout, baseline.layout);
  EXPECT_EQ(got.failed, baseline.failed);
  const auto& deg = got.result.degradation;
  EXPECT_TRUE(std::any_of(deg.begin(), deg.end(), [](const Degradation& d) {
    return d.kind == Degradation::Kind::kWaveDisabled;
  }));
}

TEST(FaultInjection, ArenaAllocFaultDisablesWaveEngine) {
  // The wave engine's scratch failing to allocate degrades to the serial
  // drain — which is bit-identical in layout by the engine's own contract.
  const Problem p = suite::random_switchbox(13, 16, 12, 12).to_problem();
  const Artifacts baseline = route_instance(p, nullptr);
  fault::Injector inj = fault::Injector::at(fault::Site::kArenaAlloc, 1);
  const Artifacts got = route_instance(p, &inj);
  ASSERT_TRUE(inj.fired());
  expect_graceful(p, got, inj);
  EXPECT_EQ(got.layout, baseline.layout);
  EXPECT_EQ(got.failed, baseline.failed);
}

TEST(FaultInjection, SinkFaultDisablesTracingNotRouting) {
  const Problem p = suite::random_switchbox(17, 14, 10, 10).to_problem();
  const Artifacts baseline = route_instance(p, nullptr);
  fault::Injector inj = fault::Injector::at(fault::Site::kSinkEmit, 5);
  const Artifacts got = route_instance(p, &inj);
  ASSERT_TRUE(inj.fired());
  expect_graceful(p, got, inj);
  // Routing output is untouched; only observability degraded.
  EXPECT_EQ(got.layout, baseline.layout);
  EXPECT_EQ(got.failed, baseline.failed);
  EXPECT_LT(got.trace.size(), baseline.trace.size());
  // The events that did arrive are a prefix of the healthy trace.
  ASSERT_GE(got.trace.size(), 4u);
  EXPECT_TRUE(std::equal(got.trace.begin(), got.trace.end(),
                         baseline.trace.begin()));
  const auto& deg = got.result.degradation;
  ASSERT_FALSE(deg.empty());
  EXPECT_TRUE(std::any_of(deg.begin(), deg.end(), [](const Degradation& d) {
    return d.kind == Degradation::Kind::kSinkDisabled;
  }));
}

TEST(FaultInjection, BudgetForceFaultStopsBetweenNets) {
  const Problem p = suite::random_switchbox(19, 16, 12, 14).to_problem();
  fault::Injector inj = fault::Injector::at(fault::Site::kBudgetForce, 3);
  const Artifacts got = route_instance(p, &inj);
  ASSERT_TRUE(inj.fired());
  expect_graceful(p, got, inj);
  EXPECT_TRUE(got.result.budget_exhausted);
  const auto& deg = got.result.degradation;
  EXPECT_TRUE(std::any_of(deg.begin(), deg.end(), [](const Degradation& d) {
    return d.kind == Degradation::Kind::kBudget;
  }));
}

TEST(FaultInjection, AttemptStartFaultSalvagesTheAttempt) {
  const Problem p = suite::random_switchbox(23, 12, 10, 8).to_problem();
  fault::Injector inj = fault::Injector::at(fault::Site::kAttemptStart, 1);
  const Artifacts got = route_instance(p, &inj);
  ASSERT_TRUE(inj.fired());
  expect_graceful(p, got, inj);
  // The attempt died before routing anything: every routable net failed.
  int routable = 0;
  for (const Net& n : p.nets())
    if (n.pins.size() >= 2 && !n.fixed) ++routable;
  EXPECT_EQ(static_cast<int>(got.failed.size()), routable);
  const auto& deg = got.result.degradation;
  ASSERT_FALSE(deg.empty());
  EXPECT_TRUE(std::any_of(deg.begin(), deg.end(), [](const Degradation& d) {
    return d.kind == Degradation::Kind::kAttemptAborted;
  }));
}

TEST(FaultInjection, MultiStartSurvivesALostAttempt) {
  // One of several attempts dies at birth; the reduction still crowns a
  // healthy winner and the degradation record names the casualty.
  const Problem p = suite::random_switchbox(29, 14, 10, 10).to_problem();
  VectorSink sink;
  RouteRequest request;
  request.problem = &p;
  request.options.threads = 1;  // serial attempts: deterministic arrival
  request.extra_attempts = 3;
  request.trace = &sink;
  fault::Injector inj = fault::Injector::at(fault::Site::kAttemptStart, 2);
  request.faults = &inj;
  const RouteResult result = route(request);
  ASSERT_TRUE(inj.fired());
  EXPECT_TRUE(result.status.ok());
  EXPECT_TRUE(verify(p, result.grid).drc_clean());
  EXPECT_EQ(result.attempts.size(), 4u);
  const auto& deg = result.degradation;
  const auto aborted =
      std::find_if(deg.begin(), deg.end(), [](const Degradation& d) {
        return d.kind == Degradation::Kind::kAttemptAborted;
      });
  ASSERT_NE(aborted, deg.end());
  EXPECT_EQ(aborted->attempt, 1);  // serial attempts: arrival 2 = attempt 1
  EXPECT_NE(result.winning_attempt, 1);
}

TEST(FaultInjection, SiteNameRoundTripIsExhaustive) {
  // Every Site in [0, kSiteCount) must carry a real, unique diagnostic
  // name — a newly appended site that forgets its site_name case would
  // surface as "unknown" in fault histories and quarantine messages, and
  // this is the test that catches it.
  std::set<std::string> names;
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    const char* name = fault::site_name(site);
    ASSERT_NE(name, nullptr) << "site " << s;
    const std::string as_string(name);
    EXPECT_FALSE(as_string.empty()) << "site " << s;
    EXPECT_NE(as_string, "unknown") << "site " << s;
    names.insert(as_string);
    // The thrown fault's what() carries the same name, so a quarantined
    // job's fault_history names the site it died at.
    EXPECT_NE(std::string(fault::InjectedFault(site, 1).what()).find(name),
              std::string::npos)
        << "site " << s;
  }
  EXPECT_EQ(names.size(), fault::kSiteCount);  // pairwise distinct
  // The seeded-injector lottery draws from the same range, so every site —
  // including the service-scoped ones — is reachable from some seed.
  std::set<fault::Site> drawn;
  for (std::uint64_t seed = 0; seed < 512 && drawn.size() < fault::kSiteCount;
       ++seed)
    drawn.insert(fault::Injector(seed).site());
  EXPECT_EQ(drawn.size(), fault::kSiteCount);
}

// -- WavePool join-path audit ----------------------------------------------

TEST(WavePoolExceptions, DrainsEveryJobJoinsThenRethrows) {
  // The documented contract run()'s callers (the wave fallbacks above)
  // lean on: when a job throws, the remaining jobs still drain, the full
  // barrier completes — no worker still touching shared state — and the
  // first exception is rethrown on the caller.
  WavePool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run(16,
               [&](int, int job) {
                 ran.fetch_add(1);
                 if (job == 5) throw std::runtime_error("job 5 failed");
               }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // every job ran despite the throw

  // The pool survives: the next round is clean and complete.
  ran.store(0);
  pool.run(8, [&](int, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);

  // Multiple failures: exactly one (the first captured) is rethrown.
  EXPECT_THROW(pool.run(12,
                        [&](int, int job) {
                          if (job % 3 == 0)
                            throw fault::InjectedFault(
                                fault::Site::kWaveSpeculate, job);
                        }),
               fault::InjectedFault);
}

TEST(WavePoolExceptions, ThrowingCostProviderRegression) {
  // End-to-end version of the audit: a kernel-level throw on a pool worker
  // (the historical "throwing cost provider" hazard) must neither deadlock
  // the pool nor leak a half-applied net — schedules at several arrivals,
  // high thread count.
  const Problem p = suite::random_switchbox(31, 20, 14, 16).to_problem();
  for (const long long arrival : {1, 5, 17, 61}) {
    fault::Injector inj =
        fault::Injector::at(fault::Site::kSearchQuery, arrival);
    const Artifacts got = route_instance(p, &inj, /*net_threads=*/8);
    expect_graceful(p, got, inj);
  }
}

}  // namespace
}  // namespace gridroute
