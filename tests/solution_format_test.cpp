#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "io/solution_format.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

/// Node/via sets of two grids match exactly, per net.
void expect_same_layout(const Problem& p, const RoutingGrid& a,
                        const RoutingGrid& b) {
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  ASSERT_EQ(a.total_vias(), b.total_vias());
  for (NetId id = 0; id < p.net_count(); ++id) {
    auto sorted = [](std::vector<GridPoint> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(a.net_nodes(id)), sorted(b.net_nodes(id)))
        << p.net(id).name;
    EXPECT_EQ(a.via_count(id), b.via_count(id)) << p.net(id).name;
  }
}

TEST(SolutionFormat, RoundTripsRoutedSwitchbox) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());

  const std::string text = solution_to_string(p, router.grid());
  const RoutingGrid loaded = parse_solution_string(text, p);
  expect_same_layout(p, router.grid(), loaded);
  EXPECT_TRUE(verify(p, loaded).all_ok());
}

TEST(SolutionFormat, RoundTripsPartialLayouts) {
  const Problem p = suite::burstein_class_switchbox(4).to_problem();
  IncrementalRouter router(p);
  router.run();  // completes or not — the layout must round-trip either way
  const RoutingGrid loaded =
      parse_solution_string(solution_to_string(p, router.grid()), p);
  expect_same_layout(p, router.grid(), loaded);
}

TEST(SolutionFormat, RoundTripsIrregularRegion) {
  const Problem p = suite::macrocell_region(21);
  IncrementalRouter router(p);
  router.run();
  const RoutingGrid loaded =
      parse_solution_string(solution_to_string(p, router.grid()), p);
  expect_same_layout(p, router.grid(), loaded);
}

TEST(SolutionFormat, EmptySolutionIsLegal) {
  const Problem p = suite::cross_switchbox().to_problem();
  const RoutingGrid empty(p.region(), p.net_count());
  const RoutingGrid loaded =
      parse_solution_string(solution_to_string(p, empty), p);
  EXPECT_EQ(loaded.total_nodes(), 0);
}

TEST(SolutionFormat, IsolatedCellAndStackedVia) {
  Problem p{Region(4, 4)};
  const NetId a = p.add_net("a");
  RoutingGrid g(p.region(), 1);
  g.occupy({{2, 2}, Layer::kMetal1}, a);
  g.occupy({{2, 2}, Layer::kMetal2}, a);
  g.add_via({2, 2}, a);
  const RoutingGrid loaded =
      parse_solution_string(solution_to_string(p, g), p);
  expect_same_layout(p, g, loaded);
  EXPECT_TRUE(loaded.has_via({2, 2}));
}

TEST(SolutionFormat, RejectsUnknownNet) {
  const Problem p = suite::cross_switchbox().to_problem();
  EXPECT_THROW(parse_solution_string("solution\nnet bogus\n", p),
               std::runtime_error);
}

TEST(SolutionFormat, RejectsConflictingWire) {
  Problem p{Region(4, 4)};
  p.add_net("a");
  p.add_net("b");
  EXPECT_THROW(parse_solution_string(
                   "solution\nnet a\nseg 0 0 3 0 m1\n"
                   "net b\nseg 2 0 2 0 m1\n",
                   p),
               std::runtime_error);
}

TEST(SolutionFormat, RejectsDiagonalSegAndDanglingVia) {
  Problem p{Region(4, 4)};
  p.add_net("a");
  EXPECT_THROW(parse_solution_string("solution\nnet a\nseg 0 0 2 2 m1\n", p),
               std::runtime_error);
  EXPECT_THROW(parse_solution_string("solution\nnet a\nvia 1 1\n", p),
               std::runtime_error);
}

TEST(SolutionFormat, RejectsMissingHeaderAndStrayKeywords) {
  Problem p{Region(4, 4)};
  p.add_net("a");
  EXPECT_THROW(parse_solution_string("net a\n", p), std::runtime_error);
  EXPECT_THROW(parse_solution_string("solution\nseg 0 0 1 0 m1\n", p),
               std::runtime_error);
  EXPECT_THROW(parse_solution_string("", p), std::runtime_error);
}

TEST(SolutionFormat, OutputIsDeterministic) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter r1(p), r2(p);
  r1.run();
  r2.run();
  EXPECT_EQ(solution_to_string(p, r1.grid()),
            solution_to_string(p, r2.grid()));
}

}  // namespace
}  // namespace gridroute
