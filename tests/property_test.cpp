#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "channel/channel_analysis.hpp"
#include "channel/channel_routers.hpp"
#include "core/incremental_router.hpp"
#include "core/stub_pruner.hpp"
#include "maze/maze_router.hpp"
#include "util/rng.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

// ---------------------------------------------------------------------------
// Randomized invariants, parameterized over seeds (property-style sweeps).
// ---------------------------------------------------------------------------

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

/// Invariant: anything the router produces passes the independent DRC, on
/// any input, routable or not.
TEST_P(SeededProperty, RouterNeverViolatesDrc) {
  const SwitchboxSpec spec =
      suite::random_switchbox(GetParam(), 14, 10, 12, 4, 0.6);
  const Problem p = spec.to_problem();
  IncrementalRouter router(p);
  router.run();
  const VerifyReport report = verify(p, router.grid());
  EXPECT_TRUE(report.drc_clean());
}

/// Invariant: claimed completion equals verified completion.
TEST_P(SeededProperty, ClaimedCompletionIsVerifiedCompletion) {
  const SwitchboxSpec spec =
      suite::random_switchbox(GetParam() * 7 + 1, 12, 12, 10, 3, 0.5);
  const Problem p = spec.to_problem();
  IncrementalRouter router(p);
  const RouteOutcome out = router.run();
  const VerifyReport report = verify(p, router.grid());
  EXPECT_EQ(out.stats.nets_routed, report.completed_net_count);
  for (const NetId id : out.failed) EXPECT_FALSE(report.nets[id].ok());
}

/// Invariant: rip-up counts never exceed the configured budget, so the
/// algorithm provably terminates.
TEST_P(SeededProperty, RipupBudgetRespected) {
  const SwitchboxSpec spec =
      suite::random_switchbox(GetParam() * 3 + 2, 10, 10, 14, 4, 0.8);
  const Problem p = spec.to_problem();
  RouterOptions opts;
  opts.max_ripups_per_net = 3;
  IncrementalRouter router(p, opts);
  const RouteOutcome out = router.run();
  EXPECT_LE(out.stats.strong_ripups, p.net_count() * opts.max_ripups_per_net);
}

/// Invariant: pruning is idempotent and preserves verified connectivity.
TEST_P(SeededProperty, PruningIdempotentAndSafe) {
  const SwitchboxSpec spec =
      suite::random_switchbox(GetParam() + 100, 12, 10, 10, 4, 0.55);
  const Problem p = spec.to_problem();
  IncrementalRouter router(p);
  router.run();
  const VerifyReport before = verify(p, router.grid());
  prune_all_stubs(p, router.grid());
  const int second_pass = prune_all_stubs(p, router.grid());
  EXPECT_EQ(second_pass, 0);  // idempotent
  const VerifyReport after = verify(p, router.grid());
  EXPECT_EQ(after.completed_net_count, before.completed_net_count);
}

/// Invariant: maze paths are well-formed walks whose cost respects the
/// Manhattan lower bound, and push-free searches cross nothing.
TEST_P(SeededProperty, MazePathsWellFormedAndBounded) {
  Rng rng(GetParam() * 13 + 5);
  Problem p{Region(20, 20)};
  p.add_net("x");
  RoutingGrid grid(p.region(), 1);
  PinBlocks pins(p);
  WeightedMazeRouter router(grid, pins);
  const CostModel& m = router.cost_model();

  for (int trial = 0; trial < 20; ++trial) {
    const GridPoint s{{rng.next_int(0, 19), rng.next_int(0, 19)},
                      Layer::kMetal1};
    const GridPoint t{{rng.next_int(0, 19), rng.next_int(0, 19)},
                      rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2};
    SearchRequest req;
    req.sources = {s};
    req.targets = {t};
    req.net = 0;
    const SearchResult res = router.route(req);
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.path.well_formed());
    EXPECT_TRUE(res.crossed.empty());
    EXPECT_GE(res.cost, m.step * manhattan(s.pos, t.pos));
    EXPECT_EQ(res.path.nodes.front(), s);
    EXPECT_EQ(res.path.nodes.back().pos, t.pos);
  }
}

/// Invariant: the Lee router finds a path exactly when the weighted router
/// does (same reachability), and its step count is never beaten.
TEST_P(SeededProperty, LeeIsStepOptimal) {
  Rng rng(GetParam() * 29 + 3);
  Problem p{Region(16, 16)};
  // Sprinkle random both-layer obstacles.
  for (int k = 0; k < 30; ++k) {
    const Point o{rng.next_int(0, 15), rng.next_int(0, 15)};
    p.region().add_obstacle({o, o});
  }
  p.add_net("x");
  RoutingGrid grid(p.region(), 1);
  PinBlocks pins(p);
  LeeRouter lee(grid, pins);
  WeightedMazeRouter weighted(grid, pins);

  for (int trial = 0; trial < 10; ++trial) {
    SearchRequest req;
    req.net = 0;
    const GridPoint s{{rng.next_int(0, 15), rng.next_int(0, 15)},
                      Layer::kMetal1};
    const GridPoint t{{rng.next_int(0, 15), rng.next_int(0, 15)},
                      Layer::kMetal1};
    if (p.region().blocked(s) || p.region().blocked(t)) continue;
    req.sources = {s};
    req.targets = {t};
    const SearchResult a = lee.route(req);
    const SearchResult b = weighted.route(req);
    EXPECT_EQ(a.found, b.found);
    if (a.found && b.found) {
      EXPECT_LE(a.path.length(), b.path.length());
    }
  }
}

/// Invariant: the grid journal makes any routing episode perfectly
/// reversible.
TEST_P(SeededProperty, JournalRoundTripsArbitraryEdits) {
  Rng rng(GetParam() * 31 + 7);
  Region region(12, 12);
  RoutingGrid grid(region, 4);

  // Phase 1: build a base state and commit it.
  for (int k = 0; k < 40; ++k)
    grid.occupy({{rng.next_int(0, 11), rng.next_int(0, 11)},
                 rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2},
                static_cast<NetId>(rng.next_below(4)));
  grid.commit();
  const int base_nodes = grid.total_nodes();
  const int base_vias = grid.total_vias();
  const auto base_net0 = grid.net_nodes(0);

  // Phase 2: a storm of random edits under a mark...
  const RoutingGrid::Mark mark = grid.mark();
  for (int k = 0; k < 200; ++k) {
    const GridPoint g{{rng.next_int(0, 11), rng.next_int(0, 11)},
                      rng.next_bool(0.5) ? Layer::kMetal1 : Layer::kMetal2};
    switch (rng.next_below(4)) {
      case 0:
        grid.occupy(g, static_cast<NetId>(rng.next_below(4)));
        break;
      case 1:
        grid.release(g);
        break;
      case 2:
        grid.add_via(g.pos, grid.owner(g));
        break;
      case 3:
        grid.rip_net(static_cast<NetId>(rng.next_below(4)));
        break;
    }
  }
  // ...then unwind.
  grid.rollback(mark);
  EXPECT_EQ(grid.total_nodes(), base_nodes);
  EXPECT_EQ(grid.total_vias(), base_vias);
  // Node lists may be reordered by the rollback, but as sets they match.
  auto as_set = [](std::vector<GridPoint> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(as_set(grid.net_nodes(0)), as_set(base_net0));
}

/// Invariant: greedy channel solutions verify for arbitrary generated
/// channels, and track counts never dip below density.
TEST_P(SeededProperty, GreedyChannelSolutionsAlwaysVerify) {
  const ChannelSpec spec =
      suite::deutsch_class_channel(GetParam() * 17 + 11, 48, 6);
  const ChannelResult res = route_greedy(spec);
  ASSERT_TRUE(res.success) << res.reason;
  EXPECT_GE(res.tracks(), ChannelAnalysis(spec).density());
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

/// Invariant: dogleg solutions verify whenever doglegging claims success.
TEST_P(SeededProperty, DoglegSolutionsAlwaysVerify) {
  const ChannelSpec spec =
      suite::deutsch_class_channel(GetParam() * 19 + 23, 48, 6);
  const ChannelResult res = route_dogleg(spec);
  if (!res.success) return;
  RealizedChannel real = realize(spec, res.solution);
  EXPECT_TRUE(verify(real.problem, real.grid).all_ok());
}

/// Invariant: disabling modification stages can only reduce (or keep equal)
/// the number of completed nets — the ablation direction the paper claims.
TEST_P(SeededProperty, ModificationMonotonicity) {
  const SwitchboxSpec spec =
      suite::random_switchbox(GetParam() * 41 + 13, 12, 10, 12, 3, 0.6);
  const Problem p = spec.to_problem();

  RouterOptions none;
  none.enable_weak = false;
  none.enable_strong = false;
  RouterOptions weak_only;
  weak_only.enable_strong = false;
  RouterOptions full;

  IncrementalRouter r_none(p, none);
  IncrementalRouter r_weak(p, weak_only);
  IncrementalRouter r_full(p, full);
  const int c_none = r_none.run().stats.nets_routed;
  const int c_weak = r_weak.run().stats.nets_routed;
  const int c_full = r_full.run().stats.nets_routed;
  EXPECT_GE(c_weak, c_none);
  EXPECT_GE(c_full, c_none);
}

}  // namespace
}  // namespace gridroute
