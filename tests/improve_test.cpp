#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

int layout_cost(const IncrementalRouter& router) {
  return router.grid().total_nodes() * 2 + router.grid().total_vias() * 8;
}

TEST(Improve, NoOpOnAlreadyOptimalLayout) {
  Problem p{Region(8, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{7, 1}, Layer::kMetal1, false}};
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  const int before = layout_cost(router);
  EXPECT_EQ(router.improve(), 0);
  EXPECT_EQ(layout_cost(router), before);
}

TEST(Improve, StraightensDetourLeftByModification) {
  // The push scenario leaves the victim with a detour; once the pusher is
  // placed, a clean-up pass finds the victim a shorter way (or keeps it).
  Problem p{Region(9, 5)};
  p.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{8, 2}, Layer::kMetal1, false}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{2, 1}, Layer::kMetal1, false},
                   {{2, 3}, Layer::kMetal1, false}};
  IncrementalRouter router(p);
  ASSERT_TRUE(router.route_net(a));
  ASSERT_TRUE(router.route_net(b));
  const int before = layout_cost(router);
  router.improve(3);
  EXPECT_LE(layout_cost(router), before);
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(Improve, NeverUncompletesNets) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  router.improve(3);
  const VerifyReport report = verify(p, router.grid());
  EXPECT_TRUE(report.all_ok());
}

TEST(Improve, ReducesCostOnModificationHeavyLayouts) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  const int before = layout_cost(router);
  const int improved = router.improve(4);
  EXPECT_LE(layout_cost(router), before);
  // The reversal box is heavily modified; clean-up finds work to do.
  EXPECT_GT(improved, 0);
}

TEST(Improve, SkipsFixedNets) {
  Problem p{Region(10, 7)};
  const NetId strap = p.add_net("vdd");
  p.net(strap).fixed = true;
  p.net(strap).pins = {{{0, 3}, Layer::kMetal1, false},
                       {{9, 3}, Layer::kMetal1, false}};
  // A deliberately wasteful (but legal) fixed pre-route: dog-legged strap.
  p.net(strap).prewire = {
      {{{0, 3}, Layer::kMetal1}, {{4, 3}, Layer::kMetal1}},
      {{{4, 3}, Layer::kMetal2}, {{4, 3}, Layer::kMetal2}},
      {{{4, 4}, Layer::kMetal2}, {{4, 4}, Layer::kMetal2}},
      {{{4, 4}, Layer::kMetal1}, {{9, 4}, Layer::kMetal1}},
  };
  // Not actually connected across rows (no vias declared), so keep it a
  // single row instead: simplest wasteful shape — an overlong stub.
  p.net(strap).prewire = {{{{0, 3}, Layer::kMetal1}, {{9, 3}, Layer::kMetal1}},
                          {{{9, 2}, Layer::kMetal1}, {{9, 2}, Layer::kMetal1}}};
  ASSERT_TRUE(p.validate().empty());
  IncrementalRouter router(p);
  router.run();
  const int strap_nodes = router.grid().node_count(strap);
  router.improve(2);
  EXPECT_EQ(router.grid().node_count(strap), strap_nodes);
}

TEST(Improve, IdempotentAtFixpoint) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  router.improve(6);  // drive to fixpoint
  EXPECT_EQ(router.improve(1), 0);
}

TEST(Improve, MultiplePassesConverge) {
  const Problem p = suite::burstein_class_switchbox(77).to_problem();
  IncrementalRouter router(p);
  router.run();
  const VerifyReport before = verify(p, router.grid());
  router.improve(5);
  const VerifyReport after = verify(p, router.grid());
  EXPECT_TRUE(after.drc_clean());
  EXPECT_EQ(after.completed_net_count, before.completed_net_count);
  EXPECT_LE(after.total_wire_nodes * 2 + after.total_vias * 8,
            before.total_wire_nodes * 2 + before.total_vias * 8);
}

}  // namespace
}  // namespace gridroute
