#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

int layout_cost(const IncrementalRouter& router) {
  return router.grid().total_nodes() * 2 + router.grid().total_vias() * 8;
}

TEST(Improve, NoOpOnAlreadyOptimalLayout) {
  Problem p{Region(8, 4)};
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{7, 1}, Layer::kMetal1, false}};
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  const int before = layout_cost(router);
  EXPECT_EQ(router.improve(), 0);
  EXPECT_EQ(layout_cost(router), before);
}

TEST(Improve, StraightensDetourLeftByModification) {
  // The push scenario leaves the victim with a detour; once the pusher is
  // placed, a clean-up pass finds the victim a shorter way (or keeps it).
  Problem p{Region(9, 5)};
  p.region().add_obstacle({{0, 2}, {8, 2}}, Layer::kMetal2);
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 2}, Layer::kMetal1, false},
                   {{8, 2}, Layer::kMetal1, false}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{2, 1}, Layer::kMetal1, false},
                   {{2, 3}, Layer::kMetal1, false}};
  IncrementalRouter router(p);
  ASSERT_TRUE(router.route_net(a));
  ASSERT_TRUE(router.route_net(b));
  const int before = layout_cost(router);
  router.improve(3);
  EXPECT_LE(layout_cost(router), before);
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(Improve, NeverUncompletesNets) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  router.improve(3);
  const VerifyReport report = verify(p, router.grid());
  EXPECT_TRUE(report.all_ok());
}

TEST(Improve, ReducesCostOnModificationHeavyLayouts) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  const int before = layout_cost(router);
  const int improved = router.improve(4);
  EXPECT_LE(layout_cost(router), before);
  // The reversal box is heavily modified; clean-up finds work to do.
  EXPECT_GT(improved, 0);
}

TEST(Improve, SkipsFixedNets) {
  Problem p{Region(10, 7)};
  const NetId strap = p.add_net("vdd");
  p.net(strap).fixed = true;
  p.net(strap).pins = {{{0, 3}, Layer::kMetal1, false},
                       {{9, 3}, Layer::kMetal1, false}};
  // A deliberately wasteful (but legal) fixed pre-route: dog-legged strap.
  p.net(strap).prewire = {
      {{{0, 3}, Layer::kMetal1}, {{4, 3}, Layer::kMetal1}},
      {{{4, 3}, Layer::kMetal2}, {{4, 3}, Layer::kMetal2}},
      {{{4, 4}, Layer::kMetal2}, {{4, 4}, Layer::kMetal2}},
      {{{4, 4}, Layer::kMetal1}, {{9, 4}, Layer::kMetal1}},
  };
  // Not actually connected across rows (no vias declared), so keep it a
  // single row instead: simplest wasteful shape — an overlong stub.
  p.net(strap).prewire = {{{{0, 3}, Layer::kMetal1}, {{9, 3}, Layer::kMetal1}},
                          {{{9, 2}, Layer::kMetal1}, {{9, 2}, Layer::kMetal1}}};
  ASSERT_TRUE(p.validate().empty());
  IncrementalRouter router(p);
  router.run();
  const int strap_nodes = router.grid().node_count(strap);
  router.improve(2);
  EXPECT_EQ(router.grid().node_count(strap), strap_nodes);
}

TEST(Improve, IdempotentAtFixpoint) {
  const Problem p = suite::dense_switchbox().to_problem();
  IncrementalRouter router(p);
  ASSERT_TRUE(router.run().complete());
  router.improve(6);  // drive to fixpoint
  EXPECT_EQ(router.improve(1), 0);
}

TEST(Improve, RipupBudgetResetsBetweenPhases) {
  // Regression: ripup_count_ used to persist across phases, so a net
  // ripped up to max_ripups_per_net in one phase stayed frozen forever —
  // later phases (improve(), incremental route_net() edits) could never
  // move it again even though the strong-modification budget is meant to
  // bound churn *within* a phase, not across the router's lifetime.
  //
  // Geometry (9x3, M2 blocked along the trunk row, both layers blocked at
  // (4,0)/(4,2) so every left-right path crosses the (4,1) portal):
  //
  //   M1:  . . b . X . c . .      a: (0,1)-(8,1), the forced trunk
  //        a a a a a a a a a      b: (2,0)-(2,2)   crosses it left
  //        . . b . X . c . .      c: (6,0)-(6,2)   crosses it right
  //
  // b's crossing rips a once (spending a's whole budget of 1); a's
  // re-route detours around b on M2 but must re-occupy the right-half
  // trunk cells (5..7,1) to reach the portal-side pin. c then needs to
  // rip a once more to cross — within the same phase that correctly
  // fails (a is frozen), but after a phase boundary the budget is fresh
  // and c must succeed, with a detouring around c on M2 row 0.
  Problem p{Region(9, 3)};
  p.region().add_obstacle({{0, 1}, {8, 1}}, Layer::kMetal2);
  for (const Layer l : {Layer::kMetal1, Layer::kMetal2}) {
    p.region().add_obstacle({{4, 0}, {4, 0}}, l);
    p.region().add_obstacle({{4, 2}, {4, 2}}, l);
  }
  const NetId a = p.add_net("a");
  p.net(a).pins = {{{0, 1}, Layer::kMetal1, false},
                   {{8, 1}, Layer::kMetal1, false}};
  const NetId b = p.add_net("b");
  p.net(b).pins = {{{2, 0}, Layer::kMetal1, false},
                   {{2, 2}, Layer::kMetal1, false}};
  const NetId c = p.add_net("c");
  p.net(c).pins = {{{6, 0}, Layer::kMetal1, false},
                   {{6, 2}, Layer::kMetal1, false}};

  RouterOptions opts;
  opts.enable_weak = false;  // every crossing is a strong rip-up
  opts.max_ripups_per_net = 1;
  IncrementalRouter router(p, opts);

  // Phase 1: a takes the trunk, b rips it once (budget now spent), and c
  // correctly fails — the per-phase budget binds within the phase.
  ASSERT_TRUE(router.route_net(a));
  ASSERT_TRUE(router.route_net(b));
  EXPECT_EQ(router.stats().strong_ripups, 1);
  EXPECT_FALSE(router.route_net(c));

  // Phase boundary: improve() starts a fresh strong-modification budget.
  router.improve(1);

  // Phase 2: the same edit now succeeds by ripping a once more. Before
  // the fix the stale count kept a frozen and c stayed unroutable here.
  EXPECT_TRUE(router.route_net(c));
  EXPECT_EQ(router.stats().strong_ripups, 2);
  EXPECT_TRUE(verify(p, router.grid()).all_ok());
}

TEST(Improve, MultiplePassesConverge) {
  const Problem p = suite::burstein_class_switchbox(77).to_problem();
  IncrementalRouter router(p);
  router.run();
  const VerifyReport before = verify(p, router.grid());
  router.improve(5);
  const VerifyReport after = verify(p, router.grid());
  EXPECT_TRUE(after.drc_clean());
  EXPECT_EQ(after.completed_net_count, before.completed_net_count);
  EXPECT_LE(after.total_wire_nodes * 2 + after.total_vias * 8,
            before.total_wire_nodes * 2 + before.total_vias * 8);
}

}  // namespace
}  // namespace gridroute
