#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/disjoint_set.hpp"
#include "util/rng.hpp"

namespace gridroute {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(77);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(77);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(7), 7u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_int(4, 4), 4);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // law of large numbers, loose
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(DisjointSet, StartsFullyDisjoint) {
  DisjointSet ds(5);
  EXPECT_EQ(ds.component_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ds.component_size(i), 1u);
  EXPECT_FALSE(ds.connected(0, 4));
}

TEST(DisjointSet, UniteMergesAndReportsNovelty) {
  DisjointSet ds(4);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_FALSE(ds.unite(1, 0));  // already together
  EXPECT_TRUE(ds.unite(2, 3));
  EXPECT_TRUE(ds.unite(0, 3));
  EXPECT_FALSE(ds.unite(1, 2));
  EXPECT_EQ(ds.component_count(), 1u);
  EXPECT_EQ(ds.component_size(2), 4u);
}

TEST(DisjointSet, TransitiveConnectivity) {
  DisjointSet ds(6);
  ds.unite(0, 1);
  ds.unite(1, 2);
  ds.unite(3, 4);
  EXPECT_TRUE(ds.connected(0, 2));
  EXPECT_TRUE(ds.connected(3, 4));
  EXPECT_FALSE(ds.connected(2, 3));
  EXPECT_EQ(ds.component_count(), 3u);  // {0,1,2} {3,4} {5}
}

TEST(DisjointSet, ResetReinitializes) {
  DisjointSet ds(3);
  ds.unite(0, 1);
  ds.reset(4);
  EXPECT_EQ(ds.size(), 4u);
  EXPECT_EQ(ds.component_count(), 4u);
  EXPECT_FALSE(ds.connected(0, 1));
}

TEST(DisjointSet, ChainOfThousandStaysConsistent) {
  const std::size_t n = 1000;
  DisjointSet ds(n);
  for (std::size_t i = 0; i + 1 < n; ++i) ds.unite(i, i + 1);
  EXPECT_EQ(ds.component_count(), 1u);
  EXPECT_TRUE(ds.connected(0, n - 1));
  EXPECT_EQ(ds.component_size(500), n);
}

TEST(MixSeeds, DistinctAcrossIndicesAndBases) {
  // Multi-start derives restart seeds with mix_seeds(base, attempt); the
  // whole point is that small bases and small indices never collide the way
  // a seed+index scheme does.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base)
    for (std::uint64_t attempt = 0; attempt < 64; ++attempt)
      seen.insert(mix_seeds(base, attempt));
  EXPECT_EQ(seen.size(), 8u * 64u);
  // And mixing must not be the identity on either argument.
  EXPECT_NE(mix_seeds(1, 1), 1u);
  EXPECT_NE(mix_seeds(0, 5), 5u);
}

TEST(MixSeeds, Deterministic) {
  EXPECT_EQ(mix_seeds(42, 7), mix_seeds(42, 7));
}

}  // namespace
}  // namespace gridroute
