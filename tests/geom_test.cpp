#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "grid/routing_grid.hpp"  // is_grid_step

namespace gridroute {
namespace {

TEST(Point, ArithmeticAndComparison) {
  const Point a{2, 3};
  const Point b{-1, 5};
  EXPECT_EQ(a + b, (Point{1, 8}));
  EXPECT_EQ(a - b, (Point{3, -2}));
  EXPECT_LT(b, a);  // lexicographic on (x, y)
  EXPECT_EQ(a, (Point{2, 3}));
}

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, -3}, {2, 3}), 10);
  EXPECT_EQ(manhattan({5, 1}, {1, 5}), 8);
}

TEST(Point, StreamOutput) {
  std::ostringstream os;
  os << Point{4, -2};
  EXPECT_EQ(os.str(), "(4,-2)");
}

TEST(Point, HashDistributesDistinctPoints) {
  std::unordered_set<Point> set;
  for (int x = -10; x <= 10; ++x)
    for (int y = -10; y <= 10; ++y) set.insert({x, y});
  EXPECT_EQ(set.size(), 21u * 21u);
}

TEST(Layer, OtherLayerIsInvolution) {
  EXPECT_EQ(other_layer(Layer::kMetal1), Layer::kMetal2);
  EXPECT_EQ(other_layer(Layer::kMetal2), Layer::kMetal1);
  EXPECT_EQ(other_layer(other_layer(Layer::kMetal1)), Layer::kMetal1);
}

TEST(GridPoint, OrderingIncludesLayer) {
  const GridPoint a{{1, 1}, Layer::kMetal1};
  const GridPoint b{{1, 1}, Layer::kMetal2};
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(GridPoint, HashSeparatesLayers) {
  std::unordered_set<GridPoint> set;
  for (int x = 0; x < 8; ++x)
    for (int y = 0; y < 8; ++y)
      for (Layer l : {Layer::kMetal1, Layer::kMetal2}) set.insert({{x, y}, l});
  EXPECT_EQ(set.size(), 128u);
}

TEST(Rect, SpanningNormalizesCorners) {
  const Rect r = Rect::spanning({5, 1}, {2, 7});
  EXPECT_EQ(r.lo, (Point{2, 1}));
  EXPECT_EQ(r.hi, (Point{5, 7}));
  EXPECT_TRUE(r.valid());
}

TEST(Rect, DimensionsAreInclusive) {
  const Rect r{{0, 0}, {0, 0}};
  EXPECT_EQ(r.width(), 1);
  EXPECT_EQ(r.height(), 1);
  EXPECT_EQ(r.area(), 1);
  const Rect r2{{1, 2}, {4, 3}};
  EXPECT_EQ(r2.width(), 4);
  EXPECT_EQ(r2.height(), 2);
  EXPECT_EQ(r2.area(), 8);
}

TEST(Rect, ContainsPointsAndRects) {
  const Rect r{{0, 0}, {4, 4}};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{4, 4}));
  EXPECT_FALSE(r.contains(Point{5, 4}));
  EXPECT_FALSE(r.contains(Point{-1, 0}));
  EXPECT_TRUE(r.contains(Rect{{1, 1}, {3, 3}}));
  EXPECT_FALSE(r.contains(Rect{{1, 1}, {5, 3}}));
}

TEST(Rect, IntersectionAndDisjointness) {
  const Rect a{{0, 0}, {4, 4}};
  const Rect b{{3, 3}, {7, 7}};
  EXPECT_TRUE(a.intersects(b));
  const Rect i = a.intersection(b);
  EXPECT_EQ(i, (Rect{{3, 3}, {4, 4}}));
  const Rect c{{5, 0}, {6, 2}};
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(a.intersection(c).valid());
}

TEST(Rect, EdgeTouchingRectsIntersect) {
  // Inclusive coordinates: sharing a column means sharing cells.
  const Rect a{{0, 0}, {2, 2}};
  const Rect b{{2, 0}, {4, 2}};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_EQ(a.intersection(b), (Rect{{2, 0}, {2, 2}}));
}

TEST(Rect, BoundingUnion) {
  const Rect a{{0, 0}, {1, 1}};
  const Rect b{{5, -2}, {6, 0}};
  EXPECT_EQ(a.bounding_union(b), (Rect{{0, -2}, {6, 1}}));
}

TEST(Rect, Inflation) {
  const Rect r{{2, 2}, {3, 3}};
  EXPECT_EQ(r.inflated(1), (Rect{{1, 1}, {4, 4}}));
  EXPECT_EQ(r.inflated(-1), (Rect{{3, 3}, {2, 2}}));
  EXPECT_FALSE(r.inflated(-1).valid());
}

TEST(Segment, AxisParallelAndLength) {
  const Segment h{{{1, 2}, Layer::kMetal1}, {{5, 2}, Layer::kMetal1}};
  EXPECT_TRUE(h.axis_parallel());
  EXPECT_TRUE(h.horizontal());
  EXPECT_EQ(h.cell_count(), 5);

  const Segment v{{{3, 0}, Layer::kMetal2}, {{3, 4}, Layer::kMetal2}};
  EXPECT_TRUE(v.axis_parallel());
  EXPECT_TRUE(v.vertical());
  EXPECT_EQ(v.cell_count(), 5);

  const Segment diag{{{0, 0}, Layer::kMetal1}, {{1, 1}, Layer::kMetal1}};
  EXPECT_FALSE(diag.axis_parallel());

  const Segment cross_layer{{{0, 0}, Layer::kMetal1}, {{0, 0}, Layer::kMetal2}};
  EXPECT_FALSE(cross_layer.axis_parallel());
}

TEST(Segment, DegenerateSingleCell) {
  const Segment s{{{2, 2}, Layer::kMetal1}, {{2, 2}, Layer::kMetal1}};
  EXPECT_TRUE(s.axis_parallel());
  EXPECT_EQ(s.cell_count(), 1);
}

TEST(GridStep, LegalMoves) {
  const GridPoint a{{2, 2}, Layer::kMetal1};
  EXPECT_TRUE(is_grid_step(a, {{3, 2}, Layer::kMetal1}));
  EXPECT_TRUE(is_grid_step(a, {{2, 1}, Layer::kMetal1}));
  EXPECT_TRUE(is_grid_step(a, {{2, 2}, Layer::kMetal2}));   // via
  EXPECT_FALSE(is_grid_step(a, {{3, 3}, Layer::kMetal1}));  // diagonal
  EXPECT_FALSE(is_grid_step(a, {{4, 2}, Layer::kMetal1}));  // jump
  EXPECT_FALSE(is_grid_step(a, {{3, 2}, Layer::kMetal2}));  // move + layer
  EXPECT_FALSE(is_grid_step(a, a));                         // no-op
}

}  // namespace
}  // namespace gridroute
