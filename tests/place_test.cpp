#include <gtest/gtest.h>

#include <stdexcept>

#include "place/placer.hpp"

namespace gridroute {
namespace {

std::vector<Block> two_blocks() {
  return {{"a", 2, 2, {0, 0}, false}, {"b", 2, 2, {5, 5}, false}};
}

TEST(Block, FootprintAndCenter) {
  const Block b{"m", 4, 3, {2, 5}, false};
  EXPECT_EQ(b.footprint(), (Rect{{2, 5}, {5, 7}}));
  EXPECT_EQ(b.center(), (Point{4, 6}));
}

TEST(Placer, RejectsOutOfBoundsBlocks) {
  EXPECT_THROW(Placer(4, 4, {{"big", 5, 1, {0, 0}, false}}, {}),
               std::invalid_argument);
  EXPECT_THROW(Placer(4, 4, {{"off", 2, 2, {3, 3}, false}}, {}),
               std::invalid_argument);
}

TEST(Placer, RejectsInitialOverlap) {
  EXPECT_THROW(Placer(8, 8,
                      {{"a", 3, 3, {0, 0}, false},
                       {"b", 3, 3, {2, 2}, false}},
                      {}),
               std::invalid_argument);
}

TEST(Placer, RejectsDanglingNetReference) {
  EXPECT_THROW(Placer(8, 8, two_blocks(), {{"n", {0, 7}}}),
               std::invalid_argument);
}

TEST(Placer, HpwlOfKnownPlacement) {
  Placer placer(10, 10, two_blocks(), {{"n", {0, 1}}});
  // Centers: (1,1) and (6,6): HPWL = 5 + 5.
  EXPECT_EQ(placer.hpwl(two_blocks()), 10);
}

TEST(Placer, PullsConnectedBlocksTogether) {
  // Two connected blocks starting in opposite corners of a large plan.
  std::vector<Block> blocks{{"a", 2, 2, {0, 0}, false},
                            {"b", 2, 2, {17, 17}, false}};
  Placer placer(20, 20, blocks, {{"n", {0, 1}}});
  const PlacementResult res = placer.run();
  EXPECT_TRUE(verify_placement(20, 20, blocks, res.blocks).empty());
  EXPECT_LT(res.final_hpwl, res.initial_hpwl);
  EXPECT_LE(res.final_hpwl, 4);  // adjacent-ish
}

TEST(Placer, FixedBlocksNeverMove) {
  std::vector<Block> blocks{{"pad", 1, 1, {0, 0}, true},
                            {"m1", 3, 3, {10, 10}, false},
                            {"m2", 3, 3, {5, 2}, false}};
  std::vector<BlockNet> nets{{"n1", {0, 1}}, {"n2", {1, 2}}};
  Placer placer(16, 16, blocks, nets);
  const PlacementResult res = placer.run();
  EXPECT_EQ(res.blocks[0].position, (Point{0, 0}));
  EXPECT_TRUE(verify_placement(16, 16, blocks, res.blocks).empty());
  EXPECT_LE(res.final_hpwl, res.initial_hpwl);
}

TEST(Placer, NoOverlapEverAccepted) {
  // Dense instance: 6 blocks of 3x3 in a 12x12 plan, heavily connected.
  std::vector<Block> blocks;
  for (int i = 0; i < 6; ++i)
    blocks.push_back({"m" + std::to_string(i), 3, 3,
                      {(i % 3) * 4, (i / 3) * 4}, false});
  std::vector<BlockNet> nets;
  for (int i = 0; i < 6; ++i)
    nets.push_back({"n" + std::to_string(i), {i, (i + 1) % 6}});
  Placer placer(12, 12, blocks, nets);
  const PlacementResult res = placer.run();
  EXPECT_EQ(res.overlap_violations, 0);
  EXPECT_TRUE(verify_placement(12, 12, blocks, res.blocks).empty());
}

TEST(Placer, DeterministicPerSeed) {
  auto run_with = [](std::uint64_t seed) {
    PlacerOptions opts;
    opts.seed = seed;
    std::vector<Block> blocks{{"a", 2, 3, {0, 0}, false},
                              {"b", 3, 2, {8, 8}, false},
                              {"c", 2, 2, {4, 9}, false}};
    std::vector<BlockNet> nets{{"n1", {0, 1}}, {"n2", {1, 2}},
                               {"n3", {0, 2}}};
    return Placer(14, 14, blocks, nets, opts).run();
  };
  const PlacementResult a = run_with(5);
  const PlacementResult b = run_with(5);
  for (std::size_t i = 0; i < a.blocks.size(); ++i)
    EXPECT_EQ(a.blocks[i].position, b.blocks[i].position);
  EXPECT_EQ(a.final_hpwl, b.final_hpwl);
}

TEST(Placer, AllFixedIsANoOp) {
  std::vector<Block> blocks{{"a", 2, 2, {0, 0}, true},
                            {"b", 2, 2, {6, 6}, true}};
  Placer placer(10, 10, blocks, {{"n", {0, 1}}});
  const PlacementResult res = placer.run();
  EXPECT_EQ(res.moves_tried, 0);
  EXPECT_EQ(res.final_hpwl, res.initial_hpwl);
}

TEST(Placer, SingleBlockNetContributesNothing) {
  Placer placer(10, 10, two_blocks(), {{"lonely", {0}}});
  EXPECT_EQ(placer.hpwl(two_blocks()), 0);
}

TEST(VerifyPlacement, CatchesViolations) {
  const std::vector<Block> original{{"a", 2, 2, {0, 0}, true}};
  std::vector<Block> moved = original;
  moved[0].position = {1, 1};
  EXPECT_FALSE(verify_placement(8, 8, original, moved).empty());

  const std::vector<Block> overlapping{{"a", 3, 3, {0, 0}, false},
                                       {"b", 3, 3, {1, 1}, false}};
  EXPECT_FALSE(
      verify_placement(8, 8, overlapping, overlapping).empty());

  const std::vector<Block> outside{{"a", 3, 3, {6, 6}, false}};
  EXPECT_FALSE(verify_placement(8, 8, outside, outside).empty());
}

}  // namespace
}  // namespace gridroute
