#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

RouteResult route_attempts(const Problem& p, int extra_attempts,
                           RouterOptions options = {}) {
  RouteRequest request;
  request.problem = &p;
  request.options = options;
  request.extra_attempts = extra_attempts;
  return route(request);
}

TEST(ShuffledOrdering, DeterministicPerSeed) {
  const Problem p = suite::burstein_class_switchbox(31).to_problem();
  RouterOptions opts;
  opts.ordering = RouterOptions::Ordering::kShuffled;
  opts.shuffle_seed = 7;
  IncrementalRouter a(p, opts), b(p, opts);
  const RouteOutcome ra = a.run();
  const RouteOutcome rb = b.run();
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(a.grid().total_nodes(), b.grid().total_nodes());
}

TEST(ShuffledOrdering, SeedsProduceDifferentOrders) {
  // Different shuffles must (on a congested box) do *different work* —
  // identical stats for all seeds would mean the seed is ignored.
  const Problem p = suite::burstein_class_switchbox(32).to_problem();
  long long first_expansions = -1;
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RouterOptions opts;
    opts.ordering = RouterOptions::Ordering::kShuffled;
    opts.shuffle_seed = seed;
    IncrementalRouter router(p, opts);
    router.run();
    if (first_expansions < 0)
      first_expansions = router.stats().expansions;
    else if (router.stats().expansions != first_expansions)
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ShuffledOrdering, StillVerifies) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouterOptions opts;
  opts.ordering = RouterOptions::Ordering::kShuffled;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    opts.shuffle_seed = seed;
    IncrementalRouter router(p, opts);
    router.run();
    EXPECT_TRUE(verify(p, router.grid()).drc_clean()) << "seed " << seed;
  }
}

TEST(MultiStart, NeverWorseThanSingleRun) {
  for (const auto& [name, spec] : suite::switchbox_suite()) {
    const Problem p = spec.to_problem();
    const RouteResult single = route_attempts(p, 0);
    const RouteResult multi = route_attempts(p, 4);
    EXPECT_GE(multi.stats.nets_routed, single.stats.nets_routed) << name;
    EXPECT_TRUE(verify(p, multi.grid).drc_clean()) << name;
  }
}

TEST(MultiStart, StopsEarlyOnCompleteRouting) {
  // A trivially routable problem: the first attempt completes, so restarts
  // must not run (observable: identical layout to the single run).
  const Problem p = suite::cross_switchbox().to_problem();
  const RouteResult single = route_attempts(p, 0);
  const RouteResult multi = route_attempts(p, 50);
  EXPECT_TRUE(multi.complete());
  EXPECT_EQ(multi.grid.total_nodes(), single.grid.total_nodes());
}

TEST(MultiStart, ZeroExtraAttemptsEqualsPlainRoute) {
  const Problem p = suite::dense_switchbox().to_problem();
  const RouteResult a = route_attempts(p, 0);
  const RouteResult b = route_attempts(p, 0);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.grid.total_nodes(), b.grid.total_nodes());
}

TEST(MultiStart, NegativeExtraAttemptsClampToPlainRoute) {
  // Negative counts used to silently mean 0; now they clamp explicitly and
  // the attempt report shows exactly one (base) attempt.
  const Problem p = suite::dense_switchbox().to_problem();
  const RouteResult a = route_attempts(p, 0);
  const RouteResult b = route_attempts(p, -3);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.grid.total_nodes(), b.grid.total_nodes());
  ASSERT_EQ(b.attempts.size(), 1u);
  EXPECT_TRUE(b.attempts[0].ran);
  EXPECT_EQ(b.winning_attempt, 0);
}

TEST(MultiStart, RestartSeedsDistinctFromShuffledBase) {
  // With a kShuffled base at seed 1, the old scheme gave restart 1 the same
  // seed (attempt index used verbatim) — base and restart explored the same
  // order. Mixing the base seed with the attempt index keeps every seed
  // distinct.
  const Problem p = suite::overfilled_switchbox().to_problem();
  RouterOptions opts;
  opts.ordering = RouterOptions::Ordering::kShuffled;
  opts.shuffle_seed = 1;
  opts.threads = 1;
  const RouteResult d = route_attempts(p, 4, opts);
  ASSERT_EQ(d.attempts.size(), 5u);
  std::set<std::uint64_t> seeds;
  for (const AttemptReport& a : d.attempts) seeds.insert(a.seed);
  EXPECT_EQ(seeds.size(), d.attempts.size());
  EXPECT_EQ(d.attempts[0].seed, opts.shuffle_seed);  // base keeps its seed
}

TEST(MultiStart, RestartsDoDistinctWork) {
  // Behavioral side of the seed fix: on a congested box, distinct orders
  // must do measurably different work across the attempts.
  const Problem p = suite::overfilled_switchbox().to_problem();
  RouterOptions opts;
  opts.ordering = RouterOptions::Ordering::kShuffled;
  opts.shuffle_seed = 1;
  opts.threads = 1;
  const RouteResult d = route_attempts(p, 4, opts);
  bool any_difference = false;
  for (const AttemptReport& a : d.attempts)
    if (a.expansions != d.attempts[0].expansions) any_difference = true;
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace gridroute
