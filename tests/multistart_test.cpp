#include <gtest/gtest.h>

#include "bench_suite/suite.hpp"
#include "core/incremental_router.hpp"
#include "verify/verify.hpp"

namespace gridroute {
namespace {

TEST(ShuffledOrdering, DeterministicPerSeed) {
  const Problem p = suite::burstein_class_switchbox(31).to_problem();
  RouterOptions opts;
  opts.ordering = RouterOptions::Ordering::kShuffled;
  opts.shuffle_seed = 7;
  IncrementalRouter a(p, opts), b(p, opts);
  const RouteOutcome ra = a.run();
  const RouteOutcome rb = b.run();
  EXPECT_EQ(ra.failed, rb.failed);
  EXPECT_EQ(a.grid().total_nodes(), b.grid().total_nodes());
}

TEST(ShuffledOrdering, SeedsProduceDifferentOrders) {
  // Different shuffles must (on a congested box) do *different work* —
  // identical stats for all seeds would mean the seed is ignored.
  const Problem p = suite::burstein_class_switchbox(32).to_problem();
  long long first_expansions = -1;
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RouterOptions opts;
    opts.ordering = RouterOptions::Ordering::kShuffled;
    opts.shuffle_seed = seed;
    IncrementalRouter router(p, opts);
    router.run();
    if (first_expansions < 0)
      first_expansions = router.stats().expansions;
    else if (router.stats().expansions != first_expansions)
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ShuffledOrdering, StillVerifies) {
  const Problem p = suite::dense_switchbox().to_problem();
  RouterOptions opts;
  opts.ordering = RouterOptions::Ordering::kShuffled;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    opts.shuffle_seed = seed;
    IncrementalRouter router(p, opts);
    router.run();
    EXPECT_TRUE(verify(p, router.grid()).drc_clean()) << "seed " << seed;
  }
}

TEST(MultiStart, NeverWorseThanSingleRun) {
  for (const auto& [name, spec] : suite::switchbox_suite()) {
    const Problem p = spec.to_problem();
    const RoutedDesign single = route(p);
    const RoutedDesign multi = route_best_of(p, 4);
    EXPECT_GE(multi.outcome.stats.nets_routed,
              single.outcome.stats.nets_routed)
        << name;
    EXPECT_TRUE(verify(p, multi.grid).drc_clean()) << name;
  }
}

TEST(MultiStart, StopsEarlyOnCompleteRouting) {
  // A trivially routable problem: the first attempt completes, so restarts
  // must not run (observable: identical layout to the single run).
  const Problem p = suite::cross_switchbox().to_problem();
  const RoutedDesign single = route(p);
  const RoutedDesign multi = route_best_of(p, 50);
  EXPECT_TRUE(multi.outcome.complete());
  EXPECT_EQ(multi.grid.total_nodes(), single.grid.total_nodes());
}

TEST(MultiStart, ZeroExtraAttemptsEqualsPlainRoute) {
  const Problem p = suite::dense_switchbox().to_problem();
  const RoutedDesign a = route(p);
  const RoutedDesign b = route_best_of(p, 0);
  EXPECT_EQ(a.outcome.failed, b.outcome.failed);
  EXPECT_EQ(a.grid.total_nodes(), b.grid.total_nodes());
}

}  // namespace
}  // namespace gridroute
