#include <gtest/gtest.h>

#include <string>

#include "bench_suite/suite.hpp"
#include "core/api.hpp"
#include "io/solution_format.hpp"
#include "io/text_format.hpp"
#include "util/status.hpp"

namespace gridroute {
namespace {

/// Malformed-input corpus (DESIGN.md §2.1f). Every entry asserts three
/// things: the right stable ErrorCode, a SourceContext naming the source
/// and 1-based line (column where unambiguous), and — through the try_*
/// variants — that the thrown StatusError and the returned Status are the
/// same object-for-object diagnostic. Hostile inputs (absurd region dims,
/// embedded NULs) must fail cleanly before any large allocation.

Status parse_problem_status(const std::string& text) {
  const StatusOr<Problem> r = try_parse_problem_string(text, "in.grid");
  EXPECT_FALSE(r.ok());
  return r.status();
}

TEST(ParserCorpus, TruncatedEmptyProblem) {
  const Status s = parse_problem_status("");
  EXPECT_EQ(s.code(), ErrorCode::kParse);
  EXPECT_EQ(s.message(), "no region in problem text");
  EXPECT_EQ(s.where().source, "in.grid");
}

TEST(ParserCorpus, TruncatedMidStatement) {
  // File cut off inside the region statement.
  const Status s = parse_problem_status("# routing job\nregion 8");
  EXPECT_EQ(s.code(), ErrorCode::kParse);
  EXPECT_EQ(s.message(), "region needs W H");
  EXPECT_EQ(s.where().line, 2);
}

TEST(ParserCorpus, TruncatedChannelMissingSide) {
  const StatusOr<ChannelSpec> r =
      try_parse_channel_string("channel\ntop 1 0 2\n", "c.grid");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
  EXPECT_EQ(r.status().message(), "missing side 'bottom'");
  EXPECT_EQ(r.status().where().source, "c.grid");
  EXPECT_EQ(r.status().where().line, 2);  // end of input
}

TEST(ParserCorpus, MismatchedChannelRows) {
  const StatusOr<ChannelSpec> r = try_parse_channel_string(
      "channel\ntop    1 0 2\nbottom 2 1\n", "c.grid");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
  EXPECT_EQ(r.status().message(),
            "top and bottom rows differ in length (3 vs 2)");
  // Anchored at the later of the two row declarations.
  EXPECT_EQ(r.status().where().line, 3);
  EXPECT_EQ(r.status().where().source, "c.grid");
}

TEST(ParserCorpus, MismatchedSwitchboxRows) {
  const StatusOr<SwitchboxSpec> r = try_parse_switchbox_string(
      "switchbox\ntop 1 2\nbottom 2 1\nleft 1 0 2\nright 2 1\n", "s.grid");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
  EXPECT_EQ(r.status().message(),
            "left and right rows differ in length (3 vs 2)");
  EXPECT_EQ(r.status().where().line, 5);
}

TEST(ParserCorpus, DuplicateNetNames) {
  const Status s = parse_problem_status(
      "region 6 6\nnet clk\npin 0 0 m1\nnet clk\npin 5 5 m1\n");
  EXPECT_EQ(s.code(), ErrorCode::kParse);
  EXPECT_EQ(s.message(), "duplicate net 'clk'");
  EXPECT_EQ(s.where().line, 4);
  EXPECT_GT(s.where().column, 0);
}

TEST(ParserCorpus, AbsurdRegionDimensions) {
  // Must be refused before any allocation: a hostile 10^12-cell region
  // would otherwise OOM the process inside Region's mask.
  const Status s = parse_problem_status("region 1000000 1000000\n");
  EXPECT_EQ(s.code(), ErrorCode::kResource);
  EXPECT_NE(s.message().find("exceeds the cell cap"), std::string::npos);
  EXPECT_EQ(s.where().line, 1);

  const Status zero = parse_problem_status("region 0 5\n");
  EXPECT_EQ(zero.code(), ErrorCode::kParse);
  EXPECT_EQ(zero.message(), "region dimensions must be > 0");
}

TEST(ParserCorpus, EmbeddedNulTerminatesLine) {
  // A NUL byte ends the line like a comment: whatever a hostile writer
  // smuggled after it cannot open a silent second document.
  std::string text = "region 4 4\nnet a";
  text += '\0';
  text += " garbage that must be ignored\npin 0 0 m1\npin 3 3 m2\n";
  const StatusOr<Problem> r = try_parse_problem_string(text, "nul.grid");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r->net_count(), 1);
  EXPECT_EQ(r->net(0).name, "a");
  EXPECT_EQ(r->net(0).pins.size(), 2u);
}

TEST(ParserCorpus, EmbeddedNulInsideKeywordFails) {
  std::string text = "reg";
  text += '\0';
  text += "ion 4 4\n";
  const Status s = parse_problem_status(text);
  EXPECT_EQ(s.code(), ErrorCode::kParse);
  // The NUL truncates the token; the leftover prefix is an unknown keyword.
  EXPECT_EQ(s.message(), "unknown keyword 'reg'");
}

TEST(ParserCorpus, ThrownAndReturnedDiagnosticsAgree) {
  const std::string text = "region 6 6\nnet a\npin here 0 m1\n";
  const StatusOr<Problem> r = try_parse_problem_string(text, "in.grid");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
  EXPECT_EQ(r.status().message(), "bad integer 'here'");
  EXPECT_EQ(r.status().where(), (SourceContext{"in.grid", 3, 5}));
  try {
    parse_problem_string(text, "in.grid");
    FAIL() << "expected StatusError";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status(), r.status());
    // Legacy contract: what() always contains "line N".
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ParserCorpus, OutOfRangePinDegradesRouteNotThrows) {
  // Coordinates outside the region are structurally parseable — the typed
  // rejection happens at route()'s mandatory validation gate, which
  // degrades the result instead of throwing.
  const StatusOr<Problem> r = try_parse_problem_string(
      "region 6 6\nnet a\npin 0 0 m1\npin 50 50 m1\n", "oob.grid");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  RouteRequest request;
  request.problem = &*r;
  const RouteResult result = route(request);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), ErrorCode::kValidation);
  EXPECT_NE(result.status.message().find("outside routing region"),
            std::string::npos);
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0], 0);
  ASSERT_FALSE(result.degradation.empty());
  EXPECT_EQ(result.degradation[0].kind, Degradation::Kind::kValidation);
  EXPECT_EQ(result.grid.total_nodes(), 0);  // honestly empty, still writable
  const std::string text = solution_to_string(*r, result.grid);
  const StatusOr<RoutingGrid> back = try_parse_solution_string(text, *r);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(solution_to_string(*r, *back), text);
}

TEST(ParserCorpus, SolutionUnknownNet) {
  const Problem p = parse_problem_string("region 6 6\nnet a\npin 0 0 m1\n");
  const StatusOr<RoutingGrid> r = try_parse_solution_string(
      "solution\nnet ghost\nseg 0 0 2 0 m1\n", p, "sol.grid");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kParse);
  EXPECT_EQ(r.status().message(), "solution: unknown net 'ghost'");
  EXPECT_EQ(r.status().where().source, "sol.grid");
  EXPECT_EQ(r.status().where().line, 2);
}

TEST(ParserCorpus, SolutionAgainstDuplicateNamedProblemIsValidationError) {
  // A Problem whose net names collide makes name-keyed solution references
  // ambiguous: that is the *problem's* defect, typed kValidation, distinct
  // from the solution text's kParse errors.
  Problem p{Region(6, 6)};
  p.add_net("a");
  p.add_net("a");
  const StatusOr<RoutingGrid> r =
      try_parse_solution_string("solution\nnet a\n", p, "sol.grid");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kValidation);
  EXPECT_NE(r.status().message().find("duplicate net name 'a'"),
            std::string::npos);
}

TEST(ParserCorpus, DegradedPartialLayoutRoundTrips) {
  // An overfilled instance leaves failed nets; the partial layout must
  // write and re-parse byte-identically — the format never requires
  // completeness.
  const Problem p =
      suite::overfilled_switchbox(3, 12, 10, 40).to_problem();
  RouteRequest request;
  request.problem = &p;
  const RouteResult result = route(request);
  EXPECT_TRUE(result.status.ok());
  EXPECT_FALSE(result.failed.empty());  // 3 nets cannot all fit in 3x1
  const std::string text = solution_to_string(p, result.grid);
  const StatusOr<RoutingGrid> back = try_parse_solution_string(text, p);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(solution_to_string(p, *back), text);
}

}  // namespace
}  // namespace gridroute
