#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the multi-start
# concurrency tests, the observability tests (golden trace, budget,
# routing-API surface — sinks take events from every worker), and the
# net-parallel wave-engine differential fuzz plus the fault-injection
# degradation fuzz again under ThreadSanitizer (GRIDROUTE_SANITIZE=thread);
# the search-kernel differential tests, the malformed-input parser corpus,
# and both fuzzes under UndefinedBehaviorSanitizer
# (GRIDROUTE_SANITIZE=undefined); and the parser corpus + fault fuzz under
# AddressSanitizer (GRIDROUTE_SANITIZE=address) — hostile inputs and
# injected faults exercise exactly the rollback/cleanup paths where a
# dangling journal reference or leaked wave state would hide.
#
#   scripts/tier1.sh                  # everything
#   GRIDROUTE_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSan re-run
#                                     (e.g. toolchains without libtsan)
#   GRIDROUTE_SKIP_UBSAN=1 scripts/tier1.sh  # skip the UBSan re-run
#   GRIDROUTE_SKIP_ASAN=1 scripts/tier1.sh   # skip the ASan re-run
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${GRIDROUTE_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DGRIDROUTE_SANITIZE=thread
  cmake --build build-tsan -j --target parallel_test multistart_test \
    obs_test api_test net_parallel_test fault_injection_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/multistart_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/api_test
  # The differential fuzzes, shrunk: TSan is ~20x slower, and both race
  # surfaces (speculation reads vs commit writes; injected-fault unwinds
  # vs pool joins) are per-wave/per-schedule, so a couple dozen instances
  # cross them thousands of times.
  GRIDROUTE_NETPAR_INSTANCES=20 ./build-tsan/tests/net_parallel_test
  GRIDROUTE_FAULT_INSTANCES=40 ./build-tsan/tests/fault_injection_test
fi

if [ "${GRIDROUTE_SKIP_UBSAN:-0}" != "1" ]; then
  cmake -B build-ubsan -S . -DGRIDROUTE_SANITIZE=undefined
  cmake --build build-ubsan -j --target search_test net_parallel_test \
    status_test parser_corpus_test fault_injection_test
  ./build-ubsan/tests/search_test
  ./build-ubsan/tests/status_test
  ./build-ubsan/tests/parser_corpus_test
  GRIDROUTE_NETPAR_INSTANCES=20 ./build-ubsan/tests/net_parallel_test
  GRIDROUTE_FAULT_INSTANCES=40 ./build-ubsan/tests/fault_injection_test
fi

if [ "${GRIDROUTE_SKIP_ASAN:-0}" != "1" ]; then
  cmake -B build-asan -S . -DGRIDROUTE_SANITIZE=address
  cmake --build build-asan -j --target io_test solution_format_test \
    status_test parser_corpus_test fault_injection_test
  ./build-asan/tests/io_test
  ./build-asan/tests/solution_format_test
  ./build-asan/tests/status_test
  ./build-asan/tests/parser_corpus_test
  GRIDROUTE_FAULT_INSTANCES=40 ./build-asan/tests/fault_injection_test
fi
