#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the multi-start
# concurrency tests and the observability tests (golden trace, budget,
# routing-API surface — sinks take events from every worker) again under
# ThreadSanitizer (GRIDROUTE_SANITIZE=thread), and the search-kernel
# differential tests under UndefinedBehaviorSanitizer
# (GRIDROUTE_SANITIZE=undefined).
#
#   scripts/tier1.sh                  # everything
#   GRIDROUTE_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSan re-run
#                                     (e.g. toolchains without libtsan)
#   GRIDROUTE_SKIP_UBSAN=1 scripts/tier1.sh  # skip the UBSan re-run
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${GRIDROUTE_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DGRIDROUTE_SANITIZE=thread
  cmake --build build-tsan -j --target parallel_test multistart_test \
    obs_test api_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/multistart_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/api_test
fi

if [ "${GRIDROUTE_SKIP_UBSAN:-0}" != "1" ]; then
  cmake -B build-ubsan -S . -DGRIDROUTE_SANITIZE=undefined
  cmake --build build-ubsan -j --target search_test
  ./build-ubsan/tests/search_test
fi
