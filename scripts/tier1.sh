#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the multi-start
# concurrency tests, the observability tests (golden trace, budget,
# routing-API surface — sinks take events from every worker), and the
# net-parallel wave-engine differential fuzz again under ThreadSanitizer
# (GRIDROUTE_SANITIZE=thread), and the search-kernel differential tests
# plus the wave-engine fuzz under UndefinedBehaviorSanitizer
# (GRIDROUTE_SANITIZE=undefined).
#
#   scripts/tier1.sh                  # everything
#   GRIDROUTE_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSan re-run
#                                     (e.g. toolchains without libtsan)
#   GRIDROUTE_SKIP_UBSAN=1 scripts/tier1.sh  # skip the UBSan re-run
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${GRIDROUTE_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DGRIDROUTE_SANITIZE=thread
  cmake --build build-tsan -j --target parallel_test multistart_test \
    obs_test api_test net_parallel_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/multistart_test
  ./build-tsan/tests/obs_test
  ./build-tsan/tests/api_test
  # The wave-engine differential fuzz, shrunk: TSan is ~20x slower and the
  # race surface (speculation reads vs commit writes) is per-wave, so a
  # couple dozen instances cross it thousands of times.
  GRIDROUTE_NETPAR_INSTANCES=20 ./build-tsan/tests/net_parallel_test
fi

if [ "${GRIDROUTE_SKIP_UBSAN:-0}" != "1" ]; then
  cmake -B build-ubsan -S . -DGRIDROUTE_SANITIZE=undefined
  cmake --build build-ubsan -j --target search_test net_parallel_test
  ./build-ubsan/tests/search_test
  GRIDROUTE_NETPAR_INSTANCES=20 ./build-ubsan/tests/net_parallel_test
fi
