#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the multi-start
# concurrency tests again under ThreadSanitizer (GRIDROUTE_SANITIZE=thread).
#
#   scripts/tier1.sh                  # everything
#   GRIDROUTE_SKIP_TSAN=1 scripts/tier1.sh   # plain build + ctest only
#                                     (e.g. toolchains without libtsan)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [ "${GRIDROUTE_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DGRIDROUTE_SANITIZE=thread
  cmake --build build-tsan -j --target parallel_test multistart_test
  ./build-tsan/tests/parallel_test
  ./build-tsan/tests/multistart_test
fi
