#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then targeted sanitizer
# re-runs. Which tests each sanitizer leg runs is declared in
# tests/CMakeLists.txt as ctest labels (tsan / ubsan / asan) on the
# gr_test() calls — the legs here just build everything (gr_all_tests) and
# run `ctest -L <label>`, so a newly added test joins the sanitizer runs by
# carrying the label instead of by someone remembering to extend a binary
# list in this script (the old hand-maintained lists silently dropped new
# tests).
#
# Label intent:
#   tsan   concurrency surfaces — multi-start workers, the net-parallel
#          wave engine, trace sinks fed from every worker, injected-fault
#          unwinds racing pool joins.
#   ubsan  arithmetic/UB surfaces — the search kernel differentials, the
#          malformed-input parsers, status plumbing.
#   asan   memory surfaces — hostile inputs and injected faults exercising
#          exactly the rollback/cleanup paths where a dangling journal
#          reference or leaked wave state would hide.
#   layer  the multi-layer stack surface — the N=2 bit-identity fuzz, the
#          stacked-via journal/rollback paths, and the N-layer routing
#          end-to-ends. Indexed layer/cut arithmetic is exactly what UBSan
#          and ASan watch, so both sanitizer legs pick the label up too.
#   service the serving layer — RoutingService's worker pool, queue,
#          result cache, cancellation tokens, and the supervision layer
#          (worker respawn, retry/quarantine, watchdog seat replacement)
#          are shared mutable state under concurrent clients, so every
#          sanitizer leg runs the label: TSan for the races, ASan and
#          UBSan for the unwind/rollback paths the chaos harness drives
#          through worker teardown and the C ABI handle registry.
#   chaos  the seed-deterministic fault storm over the serving layer
#          (tests/chaos_test.cpp) — rides the service label's legs and
#          shrinks via GRIDROUTE_CHAOS_INSTANCES.
#   eco    the incremental/ECO delta-routing surface — the differential-
#          equivalence fuzz and the invalidation-rule property tests
#          (`ctest -L eco`). The tests also carry tsan + ubsan, so both
#          sanitizer legs re-run them shrunk.
#
#   scripts/tier1.sh                  # everything
#   GRIDROUTE_SKIP_TSAN=1 scripts/tier1.sh   # skip the TSan re-run
#                                     (e.g. toolchains without libtsan)
#   GRIDROUTE_SKIP_UBSAN=1 scripts/tier1.sh  # skip the UBSan re-run
#   GRIDROUTE_SKIP_ASAN=1 scripts/tier1.sh   # skip the ASan re-run
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

# The differential fuzzes, shrunk under sanitizers: TSan is ~20x slower,
# and the race/UB surfaces are per-wave/per-schedule, so a couple dozen
# instances cross them thousands of times. The layer-identity corpus
# shrinks the same way — sanitizers need the code paths, not all 200
# fingerprints.
SHRINK_ENV=(GRIDROUTE_NETPAR_INSTANCES=20 GRIDROUTE_FAULT_INSTANCES=40
            GRIDROUTE_LAYER_INSTANCES=30 GRIDROUTE_ECO_INSTANCES=25
            GRIDROUTE_CHAOS_INSTANCES=10)

if [ "${GRIDROUTE_SKIP_TSAN:-0}" != "1" ]; then
  cmake -B build-tsan -S . -DGRIDROUTE_SANITIZE=thread
  cmake --build build-tsan -j --target gr_all_tests
  (cd build-tsan &&
   env "${SHRINK_ENV[@]}" ctest --output-on-failure -L 'tsan|service')
fi

if [ "${GRIDROUTE_SKIP_UBSAN:-0}" != "1" ]; then
  cmake -B build-ubsan -S . -DGRIDROUTE_SANITIZE=undefined
  cmake --build build-ubsan -j --target gr_all_tests
  (cd build-ubsan &&
   env "${SHRINK_ENV[@]}" ctest --output-on-failure -L 'ubsan|layer|service')
fi

if [ "${GRIDROUTE_SKIP_ASAN:-0}" != "1" ]; then
  cmake -B build-asan -S . -DGRIDROUTE_SANITIZE=address
  cmake --build build-asan -j --target gr_all_tests
  (cd build-asan &&
   env "${SHRINK_ENV[@]}" ctest --output-on-failure -L 'asan|layer|service')
fi
