#!/usr/bin/env bash
# Kernel-speed program driver (DESIGN.md §2.1g): runs every JSON-reporting
# bench harness, writes BENCH_<name>.json next to the build, and compares
# against the committed baselines under bench/baselines/.
#
#   scripts/bench.sh            # run harnesses, print reports + diff
#   scripts/bench.sh --check    # same, exit 1 on any gated regression
#   scripts/bench.sh --update   # same, then overwrite the baselines
#                               # (commit the result: the baseline file is
#                               # the gate's policy document)
#
# Gate semantics live in the baseline JSON itself (src/bench_suite/report.hpp):
# determinism fingerprints (expansions, cost sums, event counts) gate
# exactly; wall-clock metrics gate with per-metric tolerance headroom;
# info metrics are recorded for the trajectory and never gated.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-run}"
case "$MODE" in
  run|--check|--update) ;;
  *) echo "usage: $0 [--check|--update]" >&2; exit 2 ;;
esac

BENCHES=(search_kernel net_parallel_speedup obs_overhead service_throughput
         eco_speedup)
BASELINES=bench/baselines

cmake -B build -S . >/dev/null
cmake --build build -j --target "${BENCHES[@]}" bench_report_check

status=0
for name in "${BENCHES[@]}"; do
  echo "=== $name ==="
  current="build/BENCH_${name}.json"
  # The harness's own invariant gates (identity, sharper-heuristic,
  # overhead contract) fail it regardless of mode.
  "./build/bench/${name}" --json "$current" || status=1

  baseline="${BASELINES}/BENCH_${name}.json"
  if [ "$MODE" = "--update" ]; then
    mkdir -p "$BASELINES"
    cp "$current" "$baseline"
    echo "updated $baseline"
  elif [ -f "$baseline" ]; then
    ./build/bench/bench_report_check "$current" "$baseline" || status=1
  else
    echo "no baseline at $baseline (run scripts/bench.sh --update)"
    [ "$MODE" = "--check" ] && status=1
  fi
  echo
done

if [ "$MODE" = "--check" ]; then
  exit "$status"
fi
exit 0
